//! Workload generation substrate: a register/region allocator plus a
//! library of *motifs* — small code patterns that each reproduce one
//! memory-dependence mechanism the paper attributes to SPEC CPU 2017
//! applications (see DESIGN.md §3 for the substitution argument).
//!
//! A workload is an outer loop whose body strings together motif
//! instances. Each motif owns private registers and a private memory
//! region, so dependences arise only where a motif creates them on
//! purpose.

use phast_isa::{BlockHandle, CondKind, MemSize, ProgramBuilder, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The scaffold's iteration counter register.
pub const ITER: Reg = Reg(28);
/// Per-iteration pseudo-random word, recomputed at each loop head.
pub const HASH: Reg = Reg(27);
/// Holds the iteration limit the outer loop compares against.
pub const ITER_LIMIT: Reg = Reg(26);

const FIRST_FREE_REG: u8 = 1;
const LAST_FREE_REG: u8 = 25;

/// Builder context threaded through motif emitters.
pub struct Gen {
    /// The underlying program builder.
    pub b: ProgramBuilder,
    rng: SmallRng,
    next_reg: u8,
    next_region: u64,
}

impl Gen {
    /// Creates a generation context with a deterministic seed.
    pub fn new(seed: u64) -> Gen {
        Gen {
            b: ProgramBuilder::new(),
            rng: SmallRng::seed_from_u64(seed),
            next_reg: FIRST_FREE_REG,
            next_region: 0x1_0000,
        }
    }

    /// Allocates a private register.
    ///
    /// # Panics
    ///
    /// Panics when the motif mix exhausts the register pool.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg <= LAST_FREE_REG, "workload motif mix ran out of registers");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates a private, disjoint memory region of `bytes`.
    pub fn region(&mut self, bytes: u64) -> u64 {
        let base = self.next_region;
        self.next_region += bytes.next_multiple_of(0x1000);
        base
    }

    /// Deterministic random integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }

    /// Deterministic random bool.
    pub fn flip(&mut self) -> bool {
        self.rng.gen()
    }
}

/// A motif's code is spliced between `entry` and `exit` blocks that the
/// scaffold provides; the emitter must route all internal control flow so
/// execution always reaches `exit`.
pub struct Splice {
    /// First block of the motif body (jump here to run it).
    pub entry: BlockHandle,
    /// Block the motif jumps to when done.
    pub exit: BlockHandle,
}

/// Emits a chain of `n` single-cycle ALU ops on `r` (ILP filler).
pub fn alu_filler(g: &mut Gen, block: BlockHandle, r: Reg, n: usize) {
    let mut c = g.b.at(block);
    for i in 0..n {
        c.addi(r, r, (i as i64 % 7) + 1);
    }
}

/// Emits a chain of `n` FP-latency ops (scheduler pressure).
pub fn fp_filler(g: &mut Gen, block: BlockHandle, a: Reg, b: Reg, n: usize) {
    let mut c = g.b.at(block);
    for _ in 0..n {
        c.fp(a, a, b);
    }
}

/// **Tight forwarding** (548.exchange2-like): every iteration stores to a
/// slot and immediately loads it back; the store address resolves late
/// (multiply chain) so blind speculation violates every time. Store
/// distance 0, no divergent branches in between (PHAST length-1 → the
/// length-0 table).
pub fn tight_forward(g: &mut Gen, s: Splice, delay: usize) {
    let base = g.region(0x100) as i64;
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let mut c = g.b.at(s.entry);
    // Late-resolving store address: a short multiply chain ending at
    // `base`. The load uses `fast` so it can overtake the store.
    c.li(addr, 1);
    for _ in 0..delay {
        c.mul(addr, addr, addr); // 1*1*...*1 = 1, but takes 3 cycles each
    }
    c.addi(addr, addr, base - 1) // addr = base
        .li(fast, base)
        .addi(val, ITER, 13)
        .store(addr, 0, val, MemSize::B8)
        .load(dst, fast, 0, MemSize::B8)
        .add(val, val, dst)
        .jump(s.exit);
}

/// **Path-dependent dependence** (502.gcc-like, the paper's Fig. 5): a
/// divergent branch selects between two store sequences with *different
/// store distances* to the final load; only path context predicts the
/// right distance. `selector_bit` picks which bit of `HASH` drives the
/// branch (low bits repeat quickly and are learnable).
pub fn path_dep(g: &mut Gen, s: Splice, selector_bit: u32, extra_stores: usize) {
    let base = g.region(0x400) as i64;
    let sel = g.reg();
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let left = g.b.block();
    let right = g.b.block();
    let join = g.b.block();

    g.b.at(s.entry)
        .shri(sel, HASH, i64::from(selector_bit))
        .andi(sel, sel, 1)
        // The store's address resolves late (multiply chain); the load
        // below uses `fast`, so it can overtake unless predicted.
        .li(addr, 1)
        .mul(addr, addr, addr)
        .mul(addr, addr, addr)
        .addi(addr, addr, base - 1)
        .li(fast, base)
        .addi(val, ITER, 1)
        .branchi(CondKind::Eq, sel, 1, left)
        .fallthrough(right);
    // Left path: the conflicting store is the last store (distance 0).
    g.b.at(left).store(addr, 0, val, MemSize::B8).jump(join);
    // Right path: the conflicting store is followed by `extra_stores`
    // stores to other addresses (distance = extra_stores).
    {
        let mut c = g.b.at(right);
        c.store(addr, 0, val, MemSize::B8);
        for i in 0..extra_stores {
            c.store(addr, 64 * (i as i64 + 1), val, MemSize::B8);
        }
        c.jump(join);
    }
    g.b.at(join).load(dst, fast, 0, MemSize::B8).add(val, val, dst).jump(s.exit);
}

/// **Indirect dispatch** (511.povray-like, §III-C): one indirect branch
/// selects among `k` handlers; each handler stores to the shared slot at a
/// different store distance; a single load follows. PHAST learns each
/// (path, distance) with a 2-entry history; MDP-TAGE scatters it across
/// its geometric lengths.
pub fn indirect_dispatch(g: &mut Gen, s: Splice, k: usize, period_bits: u32) {
    assert!(k >= 2, "dispatch needs at least two targets");
    let base = g.region(0x400) as i64;
    let sel = g.reg();
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let join = g.b.block();
    let handlers: Vec<BlockHandle> = (0..k).map(|_| g.b.block()).collect();

    g.b.at(s.entry)
        .andi(sel, ITER, (1 << period_bits) - 1)
        .li(addr, 1)
        .mul(addr, addr, addr)
        .mul(addr, addr, addr)
        .addi(addr, addr, base - 1)
        .li(fast, base)
        .addi(val, ITER, 7)
        .indirect_jump(sel, &handlers);
    for (i, &h) in handlers.iter().enumerate() {
        let mut c = g.b.at(h);
        c.store(addr, 0, val, MemSize::B8);
        for j in 0..i {
            c.store(addr, 64 * (j as i64 + 1), val, MemSize::B8);
        }
        c.jump(join);
    }
    g.b.at(join).load(dst, fast, 0, MemSize::B8).add(val, val, dst).jump(s.exit);
}

/// **Sub-word merge** (525.x264 / 503.bwaves-like, Fig. 4): `parts`
/// narrow stores compose a value that one wide load then reads — the rare
/// multi-store dependence. All stores share the base register (the
/// paper's in-order proxy). The merge executes only once every
/// `2^period_bits` iterations: the paper measures multi-store loads as
/// 0.04% of loads on average (0.25% worst case), so the motif must be
/// correspondingly rare.
pub fn subword_merge(g: &mut Gen, s: Splice, parts: u64, period_bits: u32) {
    assert!(parts == 2 || parts == 4 || parts == 8, "parts must compose an 8-byte load");
    let base = g.region(0x100) as i64;
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let size = match 8 / parts {
        1 => MemSize::B1,
        2 => MemSize::B2,
        _ => MemSize::B4,
    };
    let body = g.b.block();
    g.b.at(s.entry)
        .andi(val, ITER, (1i64 << period_bits) - 1)
        .branchi(CondKind::Ne, val, 0, s.exit)
        .fallthrough(body);
    let mut c = g.b.at(body);
    c.li(addr, 1)
        .mul(addr, addr, addr)
        .addi(addr, addr, base - 1)
        .li(fast, base)
        .addi(val, ITER, 3);
    for i in 0..parts {
        c.store(addr, (i * (8 / parts)) as i64, val, size);
    }
    c.load(dst, fast, 0, MemSize::B8).add(val, val, dst).jump(s.exit);
}

/// **Streaming** (519.lbm / 549.fotonik3d-like): strided stores and loads
/// over a large array with a lag, so loads rarely meet an in-flight store;
/// cache and prefetcher pressure dominate.
pub fn streaming(g: &mut Gen, s: Splice, slots: u64, lag: u64, fp_ops: usize) {
    let base = g.region(slots * 8) as i64;
    let idx = g.reg();
    let st_addr = g.reg();
    let ld_addr = g.reg();
    let val = g.reg();
    let acc = g.reg();
    let mut c = g.b.at(s.entry);
    c.andi(idx, ITER, slots as i64 - 1)
        .shli(st_addr, idx, 3)
        .addi(st_addr, st_addr, base)
        .addi(val, ITER, 1)
        .store(st_addr, 0, val, MemSize::B8)
        // Load lags `lag` slots behind the store stream.
        .addi(ld_addr, idx, -(lag as i64))
        .andi(ld_addr, ld_addr, slots as i64 - 1)
        .shli(ld_addr, ld_addr, 3)
        .addi(ld_addr, ld_addr, base)
        .load(acc, ld_addr, 0, MemSize::B8);
    for _ in 0..fp_ops {
        c.fp(val, val, acc);
    }
    c.jump(s.exit);
}

/// **Data-dependent conflict** (541.leela / 531.deepsjeng-like): store
/// and load indices come from independent hashes, colliding occasionally
/// regardless of path — the conflicts no context can predict.
pub fn data_dependent(g: &mut Gen, s: Splice, slots: u64) {
    assert!(slots.is_power_of_two());
    let base = g.region(slots * 8) as i64;
    let st_addr = g.reg();
    let ld_addr = g.reg();
    let acc = g.reg();
    let acc2 = g.reg();
    let one = g.reg();
    let mut c = g.b.at(s.entry);
    // The store's address resolves late, so an unpredicted conflict is a
    // real overtake (squash); mispredicted waits cost only the chain's
    // slack, as the occasional-conflict loads are not loop-carried.
    c.li(one, 1)
        .shri(st_addr, HASH, 7)
        .andi(st_addr, st_addr, slots as i64 - 1)
        .shli(st_addr, st_addr, 3)
        .mul(st_addr, st_addr, one)
        .mul(st_addr, st_addr, one)
        .addi(st_addr, st_addr, base)
        .store(st_addr, 0, ITER, MemSize::B8)
        .shri(ld_addr, HASH, 17)
        .andi(ld_addr, ld_addr, slots as i64 - 1)
        .shli(ld_addr, ld_addr, 3)
        .addi(ld_addr, ld_addr, base)
        .load(acc2, ld_addr, 0, MemSize::B8)
        .add(acc, acc, acc2)
        .jump(s.exit);
}

/// **Register save/restore around a call** (500.perlbench-like): callers
/// selected by a divergent branch invoke a callee that spills the link
/// register and a temporary to the stack and reloads them before
/// returning. The reload's store distance depends on the caller.
pub fn call_save_restore(g: &mut Gen, s: Splice, stack_bytes: u64) {
    use phast_isa::{LINK_REG, STACK_REG};
    let _stack_region = g.region(stack_bytes);
    let sel = g.reg();
    let arg = g.reg();
    let acc = g.reg();
    let caller_a = g.b.block();
    let caller_b = g.b.block();
    let callee = g.b.block();
    let ret_a = g.b.block();
    let ret_b = g.b.block();

    g.b.at(s.entry)
        .andi(sel, ITER, 1)
        .addi(arg, ITER, 2)
        .branchi(CondKind::Eq, sel, 1, caller_a)
        .fallthrough(caller_b);
    // Caller A calls directly.
    g.b.at(caller_a).call(callee).fallthrough(ret_a);
    // Caller B pushes an extra outgoing value first (changing the
    // callee-restore store distance).
    g.b.at(caller_b).store(STACK_REG, -16, arg, MemSize::B8).call(callee).fallthrough(ret_b);
    g.b.at(callee)
        .store(STACK_REG, 0, LINK_REG, MemSize::B8) // spill link
        .store(STACK_REG, 8, arg, MemSize::B8) // spill temp
        .mul(arg, arg, arg)
        .load(arg, STACK_REG, 8, MemSize::B8) // reload temp
        .load(LINK_REG, STACK_REG, 0, MemSize::B8) // reload link
        .ret();
    g.b.at(ret_a).add(acc, acc, arg).jump(s.exit);
    g.b.at(ret_b).add(acc, acc, arg).jump(s.exit);
}

/// **Long-path dependence** (510.parest / 527.cam4-like): the conflicting
/// store is separated from its load by `branches` divergent branches whose
/// outcomes cycle with a small period, so the (long) paths repeat and are
/// learnable — but only by predictors that can afford the history length.
pub fn long_path(g: &mut Gen, s: Splice, branches: u32, period_bits: u32) {
    let base = g.region(0x200) as i64;
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let sel = g.reg();

    let mut chain: Vec<BlockHandle> = Vec::new();
    for _ in 0..branches {
        chain.push(g.b.block()); // test block
        chain.push(g.b.block()); // taken side
    }
    let last = g.b.block();

    g.b.at(s.entry)
        .li(addr, 1)
        .mul(addr, addr, addr)
        .mul(addr, addr, addr)
        .addi(addr, addr, base - 1)
        .li(fast, base)
        .addi(val, ITER, 5)
        .store(addr, 0, val, MemSize::B8)
        .jump(chain[0]);
    for i in 0..branches as usize {
        let test = chain[2 * i];
        let taken = chain[2 * i + 1];
        let next = if i + 1 < branches as usize { chain[2 * i + 2] } else { last };
        let bit = (i as u32) % period_bits;
        g.b.at(test)
            .shri(sel, ITER, i64::from(bit))
            .andi(sel, sel, 1)
            .branchi(CondKind::Eq, sel, 1, taken)
            .fallthrough(next);
        g.b.at(taken).addi(val, val, 1).jump(next);
    }
    g.b.at(last).load(dst, fast, 0, MemSize::B8).add(val, val, dst).jump(s.exit);
}

/// **Pointer chase** (505.mcf / 520.omnetpp-like): walks a pre-linked
/// ring, occasionally writing a payload field that a later hop re-reads.
/// Emits both the init code (runs once) and the per-iteration body.
pub fn pointer_chase(g: &mut Gen, init_entry: BlockHandle, init_exit: BlockHandle, s: Splice, nodes: u64) {
    assert!(nodes.is_power_of_two());
    let base = g.region(nodes * 16) as i64;
    let ptr = g.reg();
    let tmp = g.reg();
    let nxt = g.reg();
    let payload = g.reg();

    // Init: node i at base + 16i, next = base + 16*((i*7+3) mod nodes).
    let init_loop = g.b.block();
    let init_done = g.b.block();
    g.b.at(init_entry).li(tmp, 0).jump(init_loop);
    {
        let mut c = g.b.at(init_loop);
        c.shli(ptr, tmp, 4)
            .addi(ptr, ptr, base)
            .mul(nxt, tmp, Reg::ZERO) // nxt = 0
            .addi(nxt, tmp, 0)
            .mul(nxt, nxt, nxt) // tmp^2: varied link pattern
            .addi(nxt, nxt, 3)
            .andi(nxt, nxt, nodes as i64 - 1)
            .shli(nxt, nxt, 4)
            .addi(nxt, nxt, base)
            .store(ptr, 0, nxt, MemSize::B8)
            .addi(tmp, tmp, 1)
            .branchi(CondKind::LtU, tmp, nodes as i64, init_loop)
            .fallthrough(init_done);
    }
    g.b.at(init_done).li(ptr, base).jump(init_exit);

    // Body: two hops; write payload on hop 1, read it on hop 2 when the
    // ring closes quickly (data-dependent, occasional conflict).
    g.b.at(s.entry)
        .load(ptr, ptr, 0, MemSize::B8) // hop
        .addi(payload, ITER, 1)
        .store(ptr, 8, payload, MemSize::B8)
        .load(tmp, ptr, 0, MemSize::B8) // next hop address
        .load(payload, tmp, 8, MemSize::B8) // may hit the store above
        .add(payload, payload, tmp)
        .addi(ptr, tmp, 0)
        .jump(s.exit);
}

/// Assembles a complete workload: init blocks, then `iters` iterations of
/// the given body splices in order, then halt. `build_body` receives the
/// generator and a fresh splice per motif.
pub struct Scaffold {
    /// The generator (move motif registers/regions out of it).
    pub g: Gen,
    body_entry: BlockHandle,
    loop_head: BlockHandle,
    init_chain_tail: BlockHandle,
}

impl Scaffold {
    /// Starts a workload with the standard outer loop.
    pub fn new(seed: u64, iters: u64) -> Scaffold {
        use phast_isa::STACK_REG;
        let mut g = Gen::new(seed);
        let entry = g.b.block();
        let init_tail = g.b.block();
        let loop_head = g.b.block();
        let body_entry = g.b.block();
        let stack = g.region(0x1000);
        g.b.at(entry)
            .li(ITER, 0)
            .li(ITER_LIMIT, iters as i64)
            .li(STACK_REG, stack as i64 + 0x800)
            .jump(init_tail);
        // loop head recomputes the per-iteration hash word.
        g.b.at(loop_head)
            .li(HASH, 0x9E37_79B9)
            .mul(HASH, HASH, ITER)
            .shri(HASH, HASH, 5)
            .jump(body_entry);
        g.b.set_entry(entry);
        Scaffold { g, body_entry, loop_head, init_chain_tail: init_tail }
    }

    /// Adds an init stage (runs once, before the loop). Returns the
    /// (entry, exit) pair the caller must wire via e.g.
    /// [`pointer_chase`].
    pub fn init_stage(&mut self) -> (BlockHandle, BlockHandle) {
        let entry = self.init_chain_tail;
        let exit = self.g.b.block();
        self.init_chain_tail = exit;
        (entry, exit)
    }

    /// Returns a splice for the next motif in the loop body.
    pub fn next_motif(&mut self) -> Splice {
        let entry = self.body_entry;
        let exit = self.g.b.block();
        self.body_entry = exit;
        Splice { entry, exit }
    }

    /// Finishes the program: wires the init chain into the loop, closes
    /// the loop, and validates.
    pub fn finish(mut self) -> phast_isa::Program {
        let exit = self.g.b.block();
        // Wire the remaining init tail into the loop head.
        self.g.b.at(self.init_chain_tail).addi(ITER, ITER, 0).jump(self.loop_head);
        // Close the loop from the last body block.
        self.g.b.at(self.body_entry)
            .addi(ITER, ITER, 1)
            .branch(CondKind::LtU, ITER, ITER_LIMIT, self.loop_head)
            .fallthrough(exit);
        self.g.b.at(exit).halt();
        self.g.b.build().expect("generated workload must validate")
    }
}

/// **Conditional dependence** (the paper's core differentiator): on one
/// path a store writes the slot the load reads; on the other path there is
/// no conflicting store at all. The only divergent branch is *previous to
/// the store*, so PHAST's N+1 rule (N = 0) separates the paths exactly,
/// while a PC-indexed (path-insensitive) prediction stalls the no-conflict
/// path — the NoSQ false-positive generator of §II-B. A `selector_bit` of
/// 32 or more draws from high (pseudo-random) hash bits, making the
/// conflict data-dependent rather than path-dependent (541.leela-like).
pub fn conditional_dep(g: &mut Gen, s: Splice, selector_bit: u32) {
    let base = g.region(0x200) as i64;
    let sel = g.reg();
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let store_path = g.b.block();
    let join = g.b.block();

    g.b.at(s.entry)
        .shri(sel, HASH, i64::from(selector_bit.min(27)))
        .andi(sel, sel, 1)
        .li(addr, 1)
        .mul(addr, addr, addr)
        .mul(addr, addr, addr)
        .addi(addr, addr, base - 1)
        .li(fast, base)
        .addi(val, ITER, 11)
        .branchi(CondKind::Eq, sel, 1, store_path)
        .fallthrough(join);
    g.b.at(store_path).store(addr, 0, val, MemSize::B8).jump(join);
    g.b.at(join).load(dst, fast, 0, MemSize::B8).add(val, val, dst).jump(s.exit);
}

/// **Serialized writers** (500.perlbench_3-like, §VII Önder & Gupta): two
/// different store instructions write the same slot — a slow one always,
/// a fast one only on half the paths — and a load reads it. Store Sets
/// merges both stores into one set and serializes them, so the fast store
/// eats the slow store's divide-chain latency on every both-stores path;
/// store-distance predictors just wait for the youngest writer.
pub fn serialized_writers(g: &mut Gen, s: Splice, slow_divs: usize) {
    let base = g.region(0x200) as i64;
    let sel = g.reg();
    let slow = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let one = g.reg();
    let both = g.b.block();
    let join = g.b.block();

    let mut c = g.b.at(s.entry);
    c.andi(sel, ITER, 1).li(one, 1).li(slow, 1);
    for _ in 0..slow_divs {
        c.div(slow, slow, one);
    }
    c.addi(slow, slow, base - 1)
        .li(fast, base)
        .addi(val, ITER, 21)
        .store(slow, 0, val, MemSize::B8) // slow writer, always executes
        .branchi(CondKind::Eq, sel, 1, both)
        .fallthrough(join);
    g.b.at(both).addi(val, val, 1).store(fast, 0, val, MemSize::B8).jump(join);
    g.b.at(join).load(dst, fast, 0, MemSize::B8).add(val, val, dst).jump(s.exit);
}

/// **Dispatch farm** (502.gcc-like code footprint): an indirect branch
/// with a pseudo-random selector fans out over `cases` handlers, each with
/// its own private store→load pair. Hundreds of load/store PCs and
/// non-repeating dispatch sequences pressure prediction tables, the BTB
/// and the branch history the way a large irregular code base does.
pub fn dispatch_farm(g: &mut Gen, s: Splice, cases: usize, random_bits: u32) {
    assert!(cases.is_power_of_two() && cases >= 2);
    let base = g.region(64 * cases as u64) as i64;
    let sel = g.reg();
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let join = g.b.block();
    let handlers: Vec<BlockHandle> = (0..cases).map(|_| g.b.block()).collect();

    g.b.at(s.entry)
        .shri(sel, HASH, i64::from(random_bits))
        .andi(sel, sel, cases as i64 - 1)
        .li(addr, 1)
        .mul(addr, addr, addr)
        .mul(addr, addr, addr)
        .addi(addr, addr, base - 1)
        .li(fast, base)
        .addi(val, ITER, 17)
        .indirect_jump(sel, &handlers);
    for (i, &h) in handlers.iter().enumerate() {
        let off = 64 * i as i64;
        g.b.at(h)
            .store(addr, off, val, MemSize::B8)
            .load(dst, fast, off, MemSize::B8)
            .add(val, val, dst)
            .jump(join);
    }
    g.b.at(join).addi(val, val, 1).jump(s.exit);
}

/// **Cross-iteration dependence** (the §VII Önder & Gupta scenario that
/// hurts Store Sets): every iteration stores to slot `i mod K` with a
/// late-resolving address and loads slot `(i-1) mod K` — the value the
/// *previous* dynamic instance of the same store wrote. The store's
/// divide chain is gated on the previous loaded value, so the dependence
/// is the loop's critical path: a predictor that waits on the wrong
/// (current) store instance pays the whole chain every iteration, while
/// store-distance predictors wait on the already-complete older instance.
pub fn cross_iteration(g: &mut Gen, s: Splice, slots: u64, slow_divs: usize) {
    assert!(slots.is_power_of_two() && slots >= 2);
    let base = g.region(slots * 8) as i64;
    let st_addr = g.reg();
    let ld_addr = g.reg();
    let dst = g.reg(); // loop-carried: last loaded value
    let zero = g.reg();
    let one = g.reg();
    let mut c = g.b.at(s.entry);
    c.li(one, 1)
        .andi(zero, dst, 0) // zero, but data-dependent on the last load
        .andi(st_addr, ITER, slots as i64 - 1)
        .shli(st_addr, st_addr, 3)
        .add(st_addr, st_addr, zero);
    for _ in 0..slow_divs {
        c.div(st_addr, st_addr, one);
    }
    c.addi(st_addr, st_addr, base)
        .addi(dst, dst, 1)
        .store(st_addr, 0, dst, MemSize::B8)
        .addi(ld_addr, ITER, -1)
        .andi(ld_addr, ld_addr, slots as i64 - 1)
        .shli(ld_addr, ld_addr, 3)
        .addi(ld_addr, ld_addr, base)
        .load(dst, ld_addr, 0, MemSize::B8)
        .jump(s.exit);
}


/// **Deep path-dependent dependence** (the paper's central scenario): the
/// branch that decides the store distance executes *before* the store,
/// and `noise_branches` further divergent branches separate the store
/// from the load. A fixed-history predictor shorter than the full
/// store→load path cannot see the deciding branch; one longer than it
/// multiplies entries by every noise combination. PHAST trains at exactly
/// N = `noise_branches`, whose N+1 rule reaches back to the decider.
pub fn path_dep_deep(
    g: &mut Gen,
    s: Splice,
    selector_bit: u32,
    extra_stores: usize,
    noise_branches: u32,
    period_bits: u32,
) {
    let base = g.region(0x400) as i64;
    let sel = g.reg();
    let addr = g.reg();
    let fast = g.reg();
    let val = g.reg();
    let dst = g.reg();
    let left = g.b.block();
    let right = g.b.block();
    let mut chain: Vec<BlockHandle> = Vec::new();
    for _ in 0..noise_branches {
        chain.push(g.b.block()); // test
        chain.push(g.b.block()); // taken side
    }
    let last = g.b.block();

    g.b.at(s.entry)
        .shri(sel, ITER, i64::from(selector_bit))
        .andi(sel, sel, 1)
        .li(addr, 1)
        .mul(addr, addr, addr)
        .mul(addr, addr, addr)
        .addi(addr, addr, base - 1)
        .li(fast, base)
        .addi(val, ITER, 1)
        .branchi(CondKind::Eq, sel, 1, left)
        .fallthrough(right);
    let chain_head = if chain.is_empty() { last } else { chain[0] };
    g.b.at(left).store(addr, 0, val, MemSize::B8).jump(chain_head);
    {
        let mut c = g.b.at(right);
        c.store(addr, 0, val, MemSize::B8);
        for i in 0..extra_stores {
            c.store(addr, 64 * (i as i64 + 1), val, MemSize::B8);
        }
        c.jump(chain_head);
    }
    // Noise: divergent branches whose outcomes cycle with the iteration
    // counter, hiding the decider from short fixed histories.
    for i in 0..noise_branches as usize {
        let test = chain[2 * i];
        let taken = chain[2 * i + 1];
        let next = if i + 1 < noise_branches as usize { chain[2 * i + 2] } else { last };
        let bit = (i as u32 + 1) % period_bits.max(1);
        g.b.at(test)
            .shri(sel, ITER, i64::from(bit))
            .andi(sel, sel, 1)
            .branchi(CondKind::Eq, sel, 1, taken)
            .fallthrough(next);
        g.b.at(taken).addi(val, val, 1).jump(next);
    }
    g.b.at(last).load(dst, fast, 0, MemSize::B8).add(val, val, dst).jump(s.exit);
}
