//! The 23 synthetic workloads, each mirroring the memory-dependence
//! character the paper reports for a SPEC CPU 2017 application.

use crate::gen::{
    alu_filler, call_save_restore, conditional_dep, data_dependent, dispatch_farm, fp_filler,
    cross_iteration, indirect_dispatch, long_path, path_dep, path_dep_deep, pointer_chase,
    serialized_writers, streaming, subword_merge, tight_forward, Scaffold,
};
use phast_isa::Program;

/// A named synthetic workload.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Short name (used on every experiment axis, matching the paper's
    /// application naming style).
    pub name: &'static str,
    /// Which mechanism the workload exercises and which SPEC app it
    /// stands in for.
    pub description: &'static str,
    build: fn(u64) -> Program,
}

impl Workload {
    /// Builds the workload's program with the given outer-loop iteration
    /// count. Iterations are sized so typical simulations are bounded by
    /// the instruction budget, not the loop count.
    pub fn build(&self, iters: u64) -> Program {
        (self.build)(iters)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).finish()
    }
}

macro_rules! workload {
    ($name:literal, $desc:literal, $fn_name:ident) => {
        Workload { name: $name, description: $desc, build: $fn_name }
    };
}

fn perlbench_1(iters: u64) -> Program {
    let mut s = Scaffold::new(0x5001, iters);
    let m = s.next_motif();
    call_save_restore(&mut s.g, m, 0x800);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 0, 1);
    let m = s.next_motif();
    let r = s.g.reg();
    alu_filler(&mut s.g, m.entry, r, 6);
    s.g.b.at(m.entry).jump(m.exit);
    s.finish()
}

fn perlbench_2(iters: u64) -> Program {
    let mut s = Scaffold::new(0x5002, iters);
    let m = s.next_motif();
    call_save_restore(&mut s.g, m, 0x800);
    let m = s.next_motif();
    indirect_dispatch(&mut s.g, m, 4, 2);
    s.finish()
}

fn perlbench_3(iters: u64) -> Program {
    let mut s = Scaffold::new(0x5003, iters);
    let m = s.next_motif();
    call_save_restore(&mut s.g, m, 0x800);
    let m = s.next_motif();
    serialized_writers(&mut s.g, m, 3);
    let m = s.next_motif();
    cross_iteration(&mut s.g, m, 8, 1);
    s.finish()
}

fn gcc_1(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0221, iters);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 0, 1);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 1, 2);
    let m = s.next_motif();
    path_dep_deep(&mut s.g, m, 0, 1, 5, 3);
    let m = s.next_motif();
    dispatch_farm(&mut s.g, m, 32, 9);
    s.finish()
}

fn gcc_2(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0222, iters);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 0, 2);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 1);
    let m = s.next_motif();
    data_dependent(&mut s.g, m, 128);
    let m = s.next_motif();
    dispatch_farm(&mut s.g, m, 64, 11);
    s.finish()
}

fn gcc_3(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0223, iters);
    let m = s.next_motif();
    path_dep_deep(&mut s.g, m, 1, 2, 8, 4);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 1, 1);
    let m = s.next_motif();
    dispatch_farm(&mut s.g, m, 16, 13);
    s.finish()
}

fn bwaves(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0503, iters);
    let m = s.next_motif();
    subword_merge(&mut s.g, m, 2, 6);
    let m = s.next_motif();
    streaming(&mut s.g, m, 1024, 3, 4);
    let m = s.next_motif();
    cross_iteration(&mut s.g, m, 32, 0);
    s.finish()
}

fn mcf(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0505, iters);
    let (ie, ix) = s.init_stage();
    let m = s.next_motif();
    pointer_chase(&mut s.g, ie, ix, m, 256);
    let m = s.next_motif();
    streaming(&mut s.g, m, 2048, 5, 0);
    s.finish()
}

fn namd(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0508, iters);
    let m = s.next_motif();
    streaming(&mut s.g, m, 512, 7, 8);
    let m = s.next_motif();
    cross_iteration(&mut s.g, m, 4, 0);
    s.finish()
}

fn parest(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0510, iters);
    let m = s.next_motif();
    path_dep_deep(&mut s.g, m, 2, 1, 11, 3);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 17);
    let m = s.next_motif();
    data_dependent(&mut s.g, m, 256);
    s.finish()
}

fn povray(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0511, iters);
    let m = s.next_motif();
    indirect_dispatch(&mut s.g, m, 3, 2);
    let m = s.next_motif();
    indirect_dispatch(&mut s.g, m, 4, 2);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 0);
    let m = s.next_motif();
    let (a, b) = (s.g.reg(), s.g.reg());
    fp_filler(&mut s.g, m.entry, a, b, 4);
    s.g.b.at(m.entry).jump(m.exit);
    s.finish()
}

fn lbm(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0519, iters);
    let m = s.next_motif();
    streaming(&mut s.g, m, 4096, 2, 6);
    s.finish()
}

fn omnetpp(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0520, iters);
    let (ie, ix) = s.init_stage();
    let m = s.next_motif();
    pointer_chase(&mut s.g, ie, ix, m, 512);
    let m = s.next_motif();
    indirect_dispatch(&mut s.g, m, 4, 2);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 2);
    s.finish()
}

fn x264(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0525, iters);
    let m = s.next_motif();
    subword_merge(&mut s.g, m, 8, 5);
    let m = s.next_motif();
    streaming(&mut s.g, m, 512, 4, 2);
    let m = s.next_motif();
    tight_forward(&mut s.g, m, 1);
    s.finish()
}

fn blender(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0526, iters);
    let m = s.next_motif();
    indirect_dispatch(&mut s.g, m, 6, 3);
    let m = s.next_motif();
    path_dep_deep(&mut s.g, m, 1, 1, 4, 3);
    let m = s.next_motif();
    streaming(&mut s.g, m, 1024, 3, 4);
    s.finish()
}

fn cam4(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0527, iters);
    let m = s.next_motif();
    path_dep_deep(&mut s.g, m, 0, 2, 14, 4);
    let m = s.next_motif();
    streaming(&mut s.g, m, 512, 3, 2);
    s.finish()
}

fn deepsjeng(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0531, iters);
    let m = s.next_motif();
    data_dependent(&mut s.g, m, 128);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 21);
    let m = s.next_motif();
    path_dep_deep(&mut s.g, m, 3, 2, 2, 3);
    let m = s.next_motif();
    tight_forward(&mut s.g, m, 2);
    s.finish()
}

fn imagick(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0538, iters);
    let m = s.next_motif();
    streaming(&mut s.g, m, 256, 1, 8);
    let m = s.next_motif();
    subword_merge(&mut s.g, m, 4, 6);
    let m = s.next_motif();
    cross_iteration(&mut s.g, m, 16, 0);
    s.finish()
}

fn leela(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0541, iters);
    let m = s.next_motif();
    data_dependent(&mut s.g, m, 64);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 19);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 23);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 1, 1);
    s.finish()
}

fn nab(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0544, iters);
    let m = s.next_motif();
    data_dependent(&mut s.g, m, 256);
    let m = s.next_motif();
    streaming(&mut s.g, m, 128, 2, 4);
    s.finish()
}

fn exchange2(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0548, iters);
    let m = s.next_motif();
    tight_forward(&mut s.g, m, 3);
    let m = s.next_motif();
    tight_forward(&mut s.g, m, 1);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 0, 1);
    s.finish()
}

fn fotonik3d(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0549, iters);
    let m = s.next_motif();
    streaming(&mut s.g, m, 2048, 9, 6);
    s.finish()
}

fn xz(iters: u64) -> Program {
    let mut s = Scaffold::new(0x0557, iters);
    let (ie, ix) = s.init_stage();
    let m = s.next_motif();
    data_dependent(&mut s.g, m, 512);
    let m = s.next_motif();
    pointer_chase(&mut s.g, ie, ix, m, 128);
    let m = s.next_motif();
    long_path(&mut s.g, m, 7, 3);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 1);
    s.finish()
}

/// All 23 workloads, in the order every per-application figure uses.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        workload!("perlbench_1", "register save/restore around calls (500.perlbench)", perlbench_1),
        workload!("perlbench_2", "save/restore + indirect dispatch (500.perlbench)", perlbench_2),
        workload!("perlbench_3", "two call sites sharing a stack (500.perlbench)", perlbench_3),
        workload!("gcc_1", "short path-dependent store distances (502.gcc)", gcc_1),
        workload!("gcc_2", "path-dependent + data-dependent mix (502.gcc)", gcc_2),
        workload!("gcc_3", "long repeating paths (502.gcc)", gcc_3),
        workload!("bwaves", "sub-word pair composing wide loads (503.bwaves)", bwaves),
        workload!("mcf", "pointer chasing over a linked ring (505.mcf)", mcf),
        workload!("namd", "FP streaming with tight forwarding (508.namd)", namd),
        workload!("parest", "12-branch dependence paths (510.parest)", parest),
        workload!("povray", "indirect branches selecting conflicting stores (511.povray)", povray),
        workload!("lbm", "pure strided streaming (519.lbm)", lbm),
        workload!("omnetpp", "pointer chase + virtual dispatch (520.omnetpp)", omnetpp),
        workload!("x264", "8x1-byte stores under an 8-byte load (525.x264)", x264),
        workload!("blender", "wide indirect dispatch + streaming (526.blender)", blender),
        workload!("cam4", "16-branch dependence paths (527.cam4)", cam4),
        workload!("deepsjeng", "data-dependent occasional conflicts (531.deepsjeng)", deepsjeng),
        workload!("imagick", "short-lag streaming + sub-word merge (538.imagick)", imagick),
        workload!("leela", "hash-indexed conflicts no path predicts (541.leela)", leela),
        workload!("nab", "data-dependent conflicts + streaming (544.nab)", nab),
        workload!("exchange2", "distance-0 forwarding every iteration (548.exchange2)", exchange2),
        workload!("fotonik3d", "long-lag streaming, few conflicts (549.fotonik3d)", fotonik3d),
        workload!("xz", "hash tables + pointer chase (557.xz)", xz),
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}
