//! Synthetic SPEC-CPU-2017-like workloads for memory dependence
//! prediction studies.
//!
//! The paper evaluates on SPEC CPU 2017 SimPoint traces, which this
//! reproduction cannot ship. Memory dependence predictor behaviour is
//! driven by the *structure* of store→load dependences — store distance,
//! divergent-branch path length, path multiplicity, data- versus
//! path-dependence — rather than by application semantics, so each
//! workload here is a small program engineered to reproduce the mechanism
//! the paper attributes to one SPEC application (full argument in
//! DESIGN.md §3). Workloads are deterministic (seeded) and sized by an
//! outer-loop iteration count.
//!
//! # Examples
//!
//! ```
//! let w = phast_workloads::by_name("povray").unwrap();
//! let program = w.build(100);
//! assert!(program.num_divergent_branches() > 0);
//! ```

#![warn(missing_docs)]

mod apps;
pub mod gen;

pub use apps::{all_workloads, by_name, Workload};

#[cfg(test)]
mod tests {
    use super::*;
    use phast_isa::{Emulator, Op};

    #[test]
    fn registry_has_23_workloads_with_unique_names() {
        let all = all_workloads();
        assert_eq!(all.len(), 23);
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 23, "names must be unique");
    }

    #[test]
    fn by_name_roundtrip() {
        for w in all_workloads() {
            assert_eq!(by_name(w.name).unwrap().name, w.name);
        }
        assert!(by_name("not-a-workload").is_none());
    }

    #[test]
    fn every_workload_builds_and_emulates() {
        for w in all_workloads() {
            let p = w.build(50);
            let mut emu = Emulator::new(&p);
            let n = emu.run(500_000).unwrap_or_else(|e| panic!("{} emu error: {e}", w.name));
            assert!(emu.halted(), "{} must halt within budget ({} retired)", w.name, n);
            assert!(n > 100, "{} is too trivial ({} insts)", w.name, n);
        }
    }

    #[test]
    fn every_workload_has_memory_traffic_and_divergence() {
        for w in all_workloads() {
            let p = w.build(10);
            let (loads, stores) = p.num_mem_ops();
            assert!(loads > 0, "{} has no loads", w.name);
            assert!(stores > 0, "{} has no stores", w.name);
            assert!(p.num_divergent_branches() > 0, "{} has no divergent branches", w.name);
        }
    }

    #[test]
    fn workloads_scale_with_iterations() {
        let w = by_name("gcc_1").unwrap();
        let (ps, pl) = (w.build(10), w.build(100));
        let mut short = Emulator::new(&ps);
        let mut long = Emulator::new(&pl);
        let a = short.run(1_000_000).unwrap();
        let b = long.run(1_000_000).unwrap();
        assert!(b > 5 * a, "10x iterations must run much longer ({a} vs {b})");
    }

    #[test]
    fn most_workloads_have_true_dependences() {
        use phast_mdp::DepOracle;
        let mut with_deps = 0;
        for w in all_workloads() {
            let p = w.build(200);
            let oracle = DepOracle::build(&p, 200_000, 256).unwrap();
            if oracle.dependent_loads() > 0 {
                with_deps += 1;
            }
        }
        assert!(with_deps >= 20, "only {with_deps}/23 workloads produce dependences");
    }

    #[test]
    fn subword_workloads_show_multi_store_loads() {
        use phast_mdp::DepOracle;
        let p = by_name("x264").unwrap().build(500);
        let oracle = DepOracle::build(&p, 300_000, 256).unwrap();
        let stats = oracle.multi_store_stats();
        assert!(stats.multi_store_loads > 0, "x264-like must have multi-store loads");
        assert!(
            stats.same_base_pct() > 50.0,
            "composed stores share a base register ({}%)",
            stats.same_base_pct()
        );
    }

    #[test]
    fn workloads_execute_calls_and_indirects() {
        // perlbench exercises call/ret, povray exercises indirect jumps.
        let p = by_name("perlbench_1").unwrap().build(20);
        assert!(p.count_insts(|i| matches!(i.op, Op::Call(_))) > 0);
        assert!(p.count_insts(|i| matches!(i.op, Op::Ret)) > 0);
        let p = by_name("povray").unwrap().build(20);
        assert!(p.count_insts(|i| matches!(i.op, Op::IndirectJump(_))) > 0);
    }
}
