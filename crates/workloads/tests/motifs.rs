//! Motif-level checks: each workload motif must create exactly the
//! dependence structure it advertises. Verified against the dependence
//! oracle (functional emulation), independent of the timing core.

use phast_isa::Emulator;
use phast_mdp::DepOracle;
use phast_workloads::gen::{
    conditional_dep, cross_iteration, dispatch_farm, indirect_dispatch, path_dep, subword_merge,
    tight_forward, Scaffold,
};
use std::collections::HashSet;

fn oracle_for(program: &phast_isa::Program) -> DepOracle {
    DepOracle::build(program, 200_000, 512).expect("emulates")
}

#[test]
fn tight_forward_has_distance_zero_every_iteration() {
    let mut s = Scaffold::new(1, 200);
    let m = s.next_motif();
    tight_forward(&mut s.g, m, 2);
    let p = s.finish();
    let o = oracle_for(&p);
    assert!(o.dependent_loads() >= 200, "one dependence per iteration");
    // Every dependence of this motif is distance 0.
    let mut emu = Emulator::new(&p);
    let mut distances = HashSet::new();
    while let Some(rec) = emu.step().unwrap() {
        if let Some((d, _)) = o.lookup(rec.seq) {
            distances.insert(d);
        }
    }
    assert_eq!(distances, HashSet::from([0]), "tight forwarding is always distance 0");
}

#[test]
fn path_dep_produces_two_distances() {
    let mut s = Scaffold::new(2, 400);
    let m = s.next_motif();
    path_dep(&mut s.g, m, 0, 2);
    let p = s.finish();
    let o = oracle_for(&p);
    let mut emu = Emulator::new(&p);
    let mut distances = HashSet::new();
    while let Some(rec) = emu.step().unwrap() {
        if let Some((d, _)) = o.lookup(rec.seq) {
            distances.insert(d);
        }
    }
    assert!(
        distances.contains(&0) && distances.contains(&2),
        "left path distance 0, right path distance 2 (got {distances:?})"
    );
}

#[test]
fn indirect_dispatch_distances_span_the_handler_count() {
    let k = 4;
    let mut s = Scaffold::new(3, 400);
    let m = s.next_motif();
    indirect_dispatch(&mut s.g, m, k, 2);
    let p = s.finish();
    let o = oracle_for(&p);
    let mut emu = Emulator::new(&p);
    let mut distances = HashSet::new();
    while let Some(rec) = emu.step().unwrap() {
        if let Some((d, _)) = o.lookup(rec.seq) {
            distances.insert(d);
        }
    }
    for d in 0..k as u32 {
        assert!(distances.contains(&d), "handler {d} must appear (got {distances:?})");
    }
}

#[test]
fn conditional_dep_distances_differ_by_path() {
    let mut s = Scaffold::new(4, 600);
    let m = s.next_motif();
    conditional_dep(&mut s.g, m, 0); // low hash bit: both paths taken often
    // A second motif supplies intervening stores, as in the real
    // workloads: on the no-store path the provider is then several
    // stores away instead of the youngest.
    let m = s.next_motif();
    tight_forward(&mut s.g, m, 1);
    let p = s.finish();
    let o = oracle_for(&p);
    // On the store path the provider is this iteration's store (small
    // distance); on the no-store path the provider is a *previous*
    // iteration's store (larger distance). A path-insensitive prediction
    // must be wrong on one of the two.
    let mut emu = Emulator::new(&p);
    let mut distances = HashSet::new();
    while let Some(rec) = emu.step().unwrap() {
        if let Some((d, _)) = o.lookup(rec.seq) {
            distances.insert(d);
        }
    }
    assert!(
        distances.len() >= 2,
        "the two paths must need different store distances (got {distances:?})"
    );
    assert!(distances.contains(&0), "the store path is distance 0");
}

#[test]
fn cross_iteration_dependences_reach_back_one_iteration() {
    let mut s = Scaffold::new(5, 300);
    let m = s.next_motif();
    cross_iteration(&mut s.g, m, 8, 1);
    let p = s.finish();
    let o = oracle_for(&p);
    let mut emu = Emulator::new(&p);
    let mut distances = HashSet::new();
    while let Some(rec) = emu.step().unwrap() {
        if let Some((d, _)) = o.lookup(rec.seq) {
            distances.insert(d);
        }
    }
    // The body has exactly one store, so the previous iteration's instance
    // sits at distance 0 counting intervening stores... which is the
    // *current* iteration's store; the true provider is one further.
    assert!(!distances.is_empty(), "cross-iteration dependences must exist");
    assert!(
        distances.iter().all(|&d| d >= 1),
        "the provider is never the current iteration's store (got {distances:?})"
    );
}

#[test]
fn subword_merge_is_a_rare_multi_store_dependence() {
    let mut s = Scaffold::new(6, 512);
    let m = s.next_motif();
    subword_merge(&mut s.g, m, 8, 4); // once every 16 iterations
    let p = s.finish();
    let o = oracle_for(&p);
    let stats = o.multi_store_stats();
    assert!(
        (28..=36).contains(&stats.multi_store_loads),
        "512 iterations / 16 = 32 merges (got {})",
        stats.multi_store_loads
    );
    assert_eq!(
        stats.multi_store_same_base, stats.multi_store_loads,
        "all component stores share the base register"
    );
}

#[test]
fn dispatch_farm_spreads_over_many_load_pcs() {
    let cases = 16;
    let mut s = Scaffold::new(7, 600);
    let m = s.next_motif();
    dispatch_farm(&mut s.g, m, cases, 9);
    let p = s.finish();
    let o = oracle_for(&p);
    let mut emu = Emulator::new(&p);
    let mut load_pcs = HashSet::new();
    while let Some(rec) = emu.step().unwrap() {
        if o.lookup(rec.seq).is_some() {
            load_pcs.insert(rec.pc);
        }
    }
    assert!(
        load_pcs.len() >= cases - 2,
        "almost every handler's load must conflict (got {} PCs)",
        load_pcs.len()
    );
}

#[test]
fn path_dep_deep_hides_the_decider_from_short_histories() {
    use phast_workloads::gen::path_dep_deep;
    let mut s = Scaffold::new(8, 400);
    let m = s.next_motif();
    path_dep_deep(&mut s.g, m, 0, 2, 4, 3);
    let p = s.finish();
    let o = oracle_for(&p);
    let mut emu = Emulator::new(&p);
    let mut distances = HashSet::new();
    while let Some(rec) = emu.step().unwrap() {
        if let Some((d, _)) = o.lookup(rec.seq) {
            distances.insert(d);
        }
    }
    assert!(
        distances.contains(&0) && distances.contains(&2),
        "both path distances must occur (got {distances:?})"
    );
    // The program has 4 divergent noise branches between store and load.
    assert!(p.num_divergent_branches() >= 6, "decider + noise + loop branches");
}
