//! End-to-end behaviour of each baseline predictor on the out-of-order
//! core: every predictor class must (a) stay value-correct under heavy
//! speculation and (b) show its characteristic strengths and weaknesses.

use phast::{Phast, PhastConfig};
use phast_baselines::{
    Cht, ChtConfig, MdpTage, MdpTageConfig, NoSqConfig, NoSqPredictor, StoreSets, StoreSetsConfig,
    StoreVector, StoreVectorConfig,
};
use phast_isa::{CondKind, MemSize, Program, ProgramBuilder, Reg};
use phast_mdp::{BlindSpeculation, MemDepPredictor};
use phast_ooo::{simulate, CoreConfig, SimStats, TrainPoint};

/// A loop with two alternating conflicting distances — exercises the
/// multi-distance learning of Store Vectors and the per-path entries of
/// the context-sensitive predictors.
fn alternating_distance_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let left = b.block();
    let right = b.block();
    let join = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x1000).li(Reg(2), 1).li(Reg(10), 0).jump(head);
    b.at(head)
        .andi(Reg(3), Reg(10), 1)
        .div(Reg(4), Reg(1), Reg(2))
        .div(Reg(4), Reg(4), Reg(2))
        .addi(Reg(5), Reg(10), 3)
        .branchi(CondKind::Eq, Reg(3), 1, left)
        .fallthrough(right);
    b.at(left).store(Reg(4), 0, Reg(5), MemSize::B8).jump(join);
    b.at(right)
        .store(Reg(4), 0, Reg(5), MemSize::B8)
        .store(Reg(4), 64, Reg(5), MemSize::B8)
        .jump(join);
    b.at(join)
        .load(Reg(6), Reg(1), 0, MemSize::B8)
        .add(Reg(7), Reg(7), Reg(6))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

fn run(p: &Program, pred: &mut dyn MemDepPredictor, train: TrainPoint) -> SimStats {
    let mut cfg = CoreConfig::alder_lake();
    cfg.train_point = train;
    simulate(p, &cfg, pred, 400_000)
}

#[test]
fn every_baseline_cuts_violations_versus_blind() {
    let p = alternating_distance_loop(2_000);
    let blind = run(&p, &mut BlindSpeculation, TrainPoint::Detect);
    assert!(blind.violations > 1_000, "the loop must be violation-dense");

    let preds: Vec<(Box<dyn MemDepPredictor>, TrainPoint)> = vec![
        (Box::new(StoreSets::new(StoreSetsConfig::paper())), TrainPoint::Detect),
        (Box::new(StoreVector::new(StoreVectorConfig::paper())), TrainPoint::Detect),
        (Box::new(Cht::new(ChtConfig::paper())), TrainPoint::Detect),
        (Box::new(NoSqPredictor::new(NoSqConfig::paper())), TrainPoint::Detect),
        (Box::new(MdpTage::new(MdpTageConfig::paper())), TrainPoint::Detect),
        (Box::new(MdpTage::new(MdpTageConfig::short())), TrainPoint::Detect),
        (Box::new(Phast::new(PhastConfig::paper())), TrainPoint::Commit),
    ];
    for (mut pred, train) in preds {
        let name = pred.name().to_owned();
        let s = run(&p, pred.as_mut(), train);
        assert!(
            s.violations * 10 < blind.violations,
            "{name} must cut violations 10x vs blind ({} vs {})",
            s.violations,
            blind.violations
        );
        assert!(
            s.ipc() > blind.ipc(),
            "{name} must beat blind speculation ({:.3} vs {:.3})",
            s.ipc(),
            blind.ipc()
        );
    }
}

#[test]
fn store_vector_waits_on_multiple_distances() {
    // Store Vectors accumulates both distances in one vector, so once
    // trained it waits for both candidate stores: few violations, but the
    // left path's extra wait shows as false dependences.
    let p = alternating_distance_loop(2_000);
    let mut sv = StoreVector::new(StoreVectorConfig::paper());
    let s = run(&p, &mut sv, TrainPoint::Detect);
    assert!(s.violations < 50, "trained vector stops the squashes (got {})", s.violations);
    assert!(
        s.false_dependences > 100,
        "the set-like vector over-waits on one path (got {})",
        s.false_dependences
    );
}

#[test]
fn cht_trades_violations_for_stalls() {
    let p = alternating_distance_loop(2_000);
    let mut cht = Cht::new(ChtConfig::paper());
    let s = run(&p, &mut cht, TrainPoint::Detect);
    let mut phast = Phast::new(PhastConfig::paper());
    let ph = run(&p, &mut phast, TrainPoint::Commit);
    assert!(s.violations < 100, "CHT suppresses violations (got {})", s.violations);
    assert!(
        s.ipc() <= ph.ipc() * 1.01,
        "coarse all-older waits cannot beat exact distances ({:.3} vs {:.3})",
        s.ipc(),
        ph.ipc()
    );
}

#[test]
fn store_sets_pays_for_wrong_instance_waits() {
    // The cross-iteration workload (perlbench_3) is built so the LFST's
    // youngest-instance answer is the wrong one.
    let w = phast_workloads::by_name("perlbench_3").unwrap();
    let p = w.build(500_000);
    let mut ss = StoreSets::new(StoreSetsConfig::paper());
    let ss_stats = run(&p, &mut ss, TrainPoint::Detect);
    let mut ph = Phast::new(PhastConfig::paper());
    let ph_stats = run(&p, &mut ph, TrainPoint::Commit);
    assert!(
        ph_stats.ipc() > ss_stats.ipc() * 1.10,
        "PHAST must clearly beat Store Sets here ({:.3} vs {:.3})",
        ph_stats.ipc(),
        ss_stats.ipc()
    );
}

#[test]
fn mdp_tage_learns_indirect_dispatch() {
    let w = phast_workloads::by_name("povray").unwrap();
    let p = w.build(400_000);
    let mut tage = MdpTage::new(MdpTageConfig::paper());
    let s = run(&p, &mut tage, TrainPoint::Detect);
    let mut blind = BlindSpeculation;
    let b = run(&p, &mut blind, TrainPoint::Detect);
    assert!(
        s.violations * 20 < b.violations,
        "MDP-TAGE must learn the dispatch paths ({} vs blind {})",
        s.violations,
        b.violations
    );
}
