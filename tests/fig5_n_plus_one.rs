//! The paper's Fig. 5 claim, end to end: when the only divergent branch
//! sits *before* the conflicting store (N = 0), the branch's destination
//! must be part of the context or the two paths' store distances alias.
//! PHAST's N+1 rule provides exactly that bit of context.

use phast::{Phast, PhastConfig, UnlimitedPhast};
use phast_branch::{DivergentEvent, DivergentHistory};
use phast_isa::{CondKind, MemSize, Program, ProgramBuilder, Reg};
use phast_mdp::{
    DepPrediction, LoadQuery, MemDepPredictor, PredictionOutcome, Violation,
};
use phast_ooo::{simulate, CoreConfig, TrainPoint};

/// Unit-level restatement: two violations with the same load PC and N = 0
/// but different previous-branch destinations must train two distinct
/// entries.
#[test]
fn n_plus_one_distinguishes_predictor_entries() {
    for make in [
        || Box::new(Phast::new(PhastConfig::paper())) as Box<dyn MemDepPredictor>,
        || Box::new(UnlimitedPhast::new()) as Box<dyn MemDepPredictor>,
    ] {
        let mut p = make();
        let mut left = DivergentHistory::new();
        left.push(DivergentEvent { indirect: false, taken: true, target: 0b00100 });
        let mut right = DivergentHistory::new();
        right.push(DivergentEvent { indirect: false, taken: true, target: 0b01000 });

        fn viol(h: &DivergentHistory, d: u32) -> Violation<'_> {
            Violation {
            load_pc: 0x40_0100,
            store_pc: 0x40_0200,
            store_distance: d,
            history_len: 0, // N = 0: branch is previous to the store
            history: h,
            load_token: 0,
            store_token: 0,
            prior: PredictionOutcome::none(),
            }
        }
        p.train_violation(&viol(&left, 0));
        p.train_violation(&viol(&right, 2));

        fn q(h: &DivergentHistory) -> LoadQuery<'_> {
            LoadQuery { pc: 0x40_0100, token: 0, history: h, arch_seq: 0, older_stores: 8 }
        }
        assert_eq!(
            p.predict_load(&q(&left)).dep,
            DepPrediction::Distance(0),
            "{}: left path keeps its own distance",
            p.name()
        );
        assert_eq!(
            p.predict_load(&q(&right)).dep,
            DepPrediction::Distance(2),
            "{}: right path keeps its own distance",
            p.name()
        );
    }
}

/// Both paths even share the branch *outcome* (taken on both sides via
/// different targets of an indirect jump): only the destination bits can
/// tell them apart.
#[test]
fn same_outcome_different_destination_still_distinguishes() {
    let mut p = Phast::new(PhastConfig::paper());
    let mut a = DivergentHistory::new();
    a.push(DivergentEvent { indirect: true, taken: true, target: 0b00001 });
    let mut b = DivergentHistory::new();
    b.push(DivergentEvent { indirect: true, taken: true, target: 0b00010 });

    fn viol(h: &DivergentHistory, d: u32) -> Violation<'_> {
        Violation {
            load_pc: 0x40_0100,
            store_pc: 0x40_0200,
            store_distance: d,
            history_len: 0,
            history: h,
            load_token: 0,
            store_token: 0,
            prior: PredictionOutcome::none(),
        }
    }
    p.train_violation(&viol(&a, 1));
    p.train_violation(&viol(&b, 3));
    fn q(h: &DivergentHistory) -> LoadQuery<'_> {
        LoadQuery { pc: 0x40_0100, token: 0, history: h, arch_seq: 0, older_stores: 8 }
    }
    assert_eq!(p.predict_load(&q(&a)).dep, DepPrediction::Distance(1));
    assert_eq!(p.predict_load(&q(&b)).dep, DepPrediction::Distance(3));
}

/// End to end: the alternating Fig. 5 loop. PHAST must keep violations and
/// false dependences near zero after warmup; a PC-only (path-insensitive)
/// distance predictor — PHAST trained as if every conflict had the same
/// context — must keep mispredicting.
fn fig5_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let left = b.block();
    let right = b.block();
    let join = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x1000).li(Reg(2), 1).li(Reg(10), 0).jump(head);
    b.at(head)
        .andi(Reg(3), Reg(10), 1)
        .div(Reg(4), Reg(1), Reg(2))
        .div(Reg(4), Reg(4), Reg(2))
        .addi(Reg(5), Reg(10), 7)
        .branchi(CondKind::Eq, Reg(3), 1, left)
        .fallthrough(right);
    b.at(left).store(Reg(4), 0, Reg(5), MemSize::B8).jump(join);
    b.at(right)
        .store(Reg(4), 0, Reg(5), MemSize::B8)
        .store(Reg(4), 64, Reg(5), MemSize::B8)
        .store(Reg(4), 128, Reg(5), MemSize::B8)
        .jump(join);
    b.at(join)
        .load(Reg(6), Reg(1), 0, MemSize::B8)
        .add(Reg(7), Reg(7), Reg(6))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

#[test]
fn phast_resolves_the_fig5_loop_end_to_end() {
    let p = fig5_loop(3000);
    let mut cfg = CoreConfig::alder_lake();
    cfg.train_point = TrainPoint::Commit;
    let mut pred = Phast::new(PhastConfig::paper());
    let s = simulate(&p, &cfg, &mut pred, 500_000);
    assert!(s.violations <= 10, "only cold misses may squash (got {})", s.violations);
    assert!(
        s.false_dependences <= 10,
        "both paths' distances are learned exactly (got {})",
        s.false_dependences
    );
    assert!(s.forwarded_loads > 2_500, "loads forward from the right store");
}
