//! Proves the *interleaved* steady-state cycle loop is allocation-free.
//!
//! The solo guarantee lives in `tests/alloc_free.rs`; this file proves it
//! survives lane batching: several cores advanced in round-robin slices —
//! exactly what `LaneBatch::run` does to a wave — must not allocate once
//! every lane is past its warm-up. A slice boundary that collected a
//! `Vec`, re-boxed a predictor, or grew a map per switch would fail here
//! with an exact count instead of only showing up as a slow `--lanes=8`
//! sweep.
//!
//! This file must hold exactly one `#[test]`: the libtest runner executes
//! tests of one binary concurrently, and a neighbour's allocations would
//! leak into the measured window.

use phast_mdp::BlindSpeculation;
use phast_ooo::{CheckConfig, Core, CoreConfig, Deadline, SliceOutcome};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Same warm-up rationale as `alloc_free.rs`: lbm's sparse-memory map
/// closes after one full pass over its 4096-slot buffer.
const WARMUP_INSTS: u64 = 120_000;
const MEASURED_INSTS: u64 = 20_000;
const MAX_CYCLES: u64 = 10_000_000;
/// Slice length in cycles — deliberately smaller than `LaneBatch`'s
/// default so the measured window crosses *many* lane switches.
const SLICE: u64 = 4_096;
const LANES: usize = 4;

#[test]
fn interleaved_steady_state_cycle_loop_does_not_allocate() {
    let w = phast_workloads::by_name("lbm").expect("workload exists");
    let program = w.build(100_000);
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig::off();
    let deadline = Deadline::none();

    let mut predictors: Vec<BlindSpeculation> = (0..LANES).map(|_| BlindSpeculation).collect();
    let mut cores: Vec<Core> = predictors
        .iter_mut()
        .map(|p| {
            let direction =
                Box::new(phast_branch::Tage::new(phast_branch::TageConfig::default()));
            Core::new(&program, cfg.clone(), p, direction)
        })
        .collect();

    // Warm every lane round-robin, exactly as a wave runs.
    let mut done = [false; LANES];
    while !done.iter().all(|d| *d) {
        for (lane, core) in cores.iter_mut().enumerate() {
            if done[lane] {
                continue;
            }
            match core
                .try_run_slice(WARMUP_INSTS, MAX_CYCLES, &deadline, SLICE)
                .expect("warmup slice runs clean")
            {
                SliceOutcome::Done(stats) => {
                    assert!(stats.committed >= WARMUP_INSTS, "lane {lane} warm budget");
                    done[lane] = true;
                }
                SliceOutcome::Pending => {}
            }
        }
    }

    // Measured window: the same interleave, one bigger budget. The
    // bookkeeping lives on the stack so it cannot perturb the count.
    let mut done = [false; LANES];
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    while !done.iter().all(|d| *d) {
        for (lane, core) in cores.iter_mut().enumerate() {
            if done[lane] {
                continue;
            }
            match core
                .try_run_slice(WARMUP_INSTS + MEASURED_INSTS, MAX_CYCLES, &deadline, SLICE)
                .expect("measured slice runs clean")
            {
                SliceOutcome::Done(stats) => {
                    assert!(
                        stats.committed >= WARMUP_INSTS + MEASURED_INSTS,
                        "lane {lane} measured budget (committed {})",
                        stats.committed
                    );
                    done[lane] = true;
                }
                SliceOutcome::Pending => {}
            }
        }
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - before;

    assert_eq!(
        during, 0,
        "interleaved steady-state loop allocated {during} times across {LANES} lanes \
         × {MEASURED_INSTS} instructions"
    );
}
