//! Property test: for random programs, the out-of-order core's committed
//! stream must equal the functional emulator's stream exactly — under
//! blind speculation (maximum memory-order violations) and under PHAST.
//!
//! Programs are generated with forward-only control flow so they always
//! terminate; loads, stores (of every size), multiplies, divides and
//! indirect jumps are all in the mix.

mod common;

use common::{block_strategy, build_program};
use phast::{Phast, PhastConfig};
use phast_branch::{Tage, TageConfig};
use phast_isa::{Emulator, Program};
use phast_mdp::{BlindSpeculation, MemDepPredictor, TotalOrder};
use phast_ooo::{Core, CoreConfig, TrainPoint};
use proptest::prelude::*;

fn assert_equivalent(program: &Program, predictor: &mut dyn MemDepPredictor, train: TrainPoint) {
    let mut emu = Emulator::new(program);
    let expected = emu.run_collect(100_000).expect("emulates");

    let mut cfg = CoreConfig::alder_lake();
    cfg.train_point = train;
    let mut core =
        Core::new(program, cfg, predictor, Box::new(Tage::new(TageConfig::default())));
    core.enable_commit_log();
    let stats = core.run(100_000, 10_000_000);
    assert!(stats.halted, "must run to completion");

    let log = core.commit_log();
    assert_eq!(log.len(), expected.len(), "commit count");
    for (got, want) in log.iter().zip(&expected) {
        assert_eq!(got.pc, want.pc, "pc at seq {}", want.seq);
        assert_eq!(got.dst_value, want.dst_value, "value at seq {} pc {:#x}", want.seq, want.pc);
        assert_eq!(got.eff_addr, want.eff_addr, "address at seq {} pc {:#x}", want.seq, want.pc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_commit_like_the_emulator_blind(
        blocks in prop::collection::vec(block_strategy(), 2..12)
    ) {
        let program = build_program(&blocks);
        assert_equivalent(&program, &mut BlindSpeculation, TrainPoint::Detect);
    }

    #[test]
    fn random_programs_commit_like_the_emulator_phast(
        blocks in prop::collection::vec(block_strategy(), 2..12)
    ) {
        let program = build_program(&blocks);
        let mut phast = Phast::new(PhastConfig::paper());
        assert_equivalent(&program, &mut phast, TrainPoint::Commit);
    }

    #[test]
    fn random_programs_commit_like_the_emulator_total_order(
        blocks in prop::collection::vec(block_strategy(), 2..10)
    ) {
        let program = build_program(&blocks);
        assert_equivalent(&program, &mut TotalOrder, TrainPoint::Detect);
    }
}
