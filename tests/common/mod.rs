//! Shared random-program generator for the cross-crate property tests.
//!
//! Generates terminating programs (every control edge goes forward) that
//! mix ALU ops, multiplies, divides, loads and stores of every size, and
//! conditional/indirect control flow. Memory accesses are funnelled into a
//! small window around 0x1000 so store-to-load conflicts are frequent.

#![allow(dead_code)]

use phast_isa::{AluKind, CondKind, MemSize, Program, ProgramBuilder, Reg};
use proptest::prelude::*;

/// One randomly generated instruction (no control flow).
#[derive(Clone, Debug)]
pub enum RandInst {
    Alu(AluKind, u8, u8, u8),
    AluImm(AluKind, u8, u8, i8),
    Li(u8, i16),
    Mul(u8, u8, u8),
    Div(u8, u8, u8),
    Load(u8, u8, u8, MemSize),
    Store(u8, u8, u8, MemSize),
}

pub fn reg_strategy() -> impl Strategy<Value = u8> {
    1u8..10
}

pub fn size_strategy() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::B1),
        Just(MemSize::B2),
        Just(MemSize::B4),
        Just(MemSize::B8)
    ]
}

pub fn alu_strategy() -> impl Strategy<Value = AluKind> {
    prop_oneof![
        Just(AluKind::Add),
        Just(AluKind::Sub),
        Just(AluKind::And),
        Just(AluKind::Or),
        Just(AluKind::Xor),
        Just(AluKind::Shl),
        Just(AluKind::Shr),
        Just(AluKind::SltU),
    ]
}

pub fn inst_strategy() -> impl Strategy<Value = RandInst> {
    prop_oneof![
        (alu_strategy(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(k, d, a, b)| RandInst::Alu(k, d, a, b)),
        (alu_strategy(), reg_strategy(), reg_strategy(), any::<i8>())
            .prop_map(|(k, d, a, i)| RandInst::AluImm(k, d, a, i)),
        (reg_strategy(), any::<i16>()).prop_map(|(d, i)| RandInst::Li(d, i)),
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(d, a, b)| RandInst::Mul(d, a, b)),
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(d, a, b)| RandInst::Div(d, a, b)),
        // Loads/stores address a small window around 0x1000 through a
        // masked base register, so conflicts are frequent.
        (reg_strategy(), reg_strategy(), 0u8..32, size_strategy())
            .prop_map(|(d, b, off, s)| RandInst::Load(d, b, off, s)),
        (reg_strategy(), reg_strategy(), 0u8..32, size_strategy())
            .prop_map(|(b, v, off, s)| RandInst::Store(b, v, off, s)),
    ]
}

/// One block: instructions plus how it ends (value selects the edge).
#[derive(Clone, Debug)]
pub struct RandBlock {
    pub insts: Vec<RandInst>,
    /// 0 = fallthrough, 1 = jump ahead, 2 = cond branch, 3 = indirect.
    pub terminator: u8,
    pub skip: u8,
    pub cond_reg: u8,
}

pub fn block_strategy() -> impl Strategy<Value = RandBlock> {
    (
        prop::collection::vec(inst_strategy(), 1..8),
        0u8..4,
        1u8..3,
        reg_strategy(),
    )
        .prop_map(|(insts, terminator, skip, cond_reg)| RandBlock {
            insts,
            terminator,
            skip,
            cond_reg,
        })
}

/// Builds a terminating program: every control edge goes forward.
pub fn build_program(blocks: &[RandBlock]) -> Program {
    let mut b = ProgramBuilder::new();
    let n = blocks.len();
    let handles: Vec<_> = (0..=n).map(|_| b.block()).collect(); // +1 exit block

    for (i, spec) in blocks.iter().enumerate() {
        let mut c = b.at(handles[i]);
        // Constrain memory bases into a small window so loads/stores
        // collide often: base = 0x1000 + (reg & 0x38).
        c.li(Reg(15), 0x1000);
        for inst in &spec.insts {
            match *inst {
                RandInst::Alu(k, d, a, bb) => {
                    c.alu(k, Reg(d), Reg(a), Reg(bb));
                }
                RandInst::AluImm(k, d, a, imm) => {
                    c.alui(k, Reg(d), Reg(a), i64::from(imm));
                }
                RandInst::Li(d, imm) => {
                    c.li(Reg(d), i64::from(imm));
                }
                RandInst::Mul(d, a, bb) => {
                    c.mul(Reg(d), Reg(a), Reg(bb));
                }
                RandInst::Div(d, a, bb) => {
                    c.div(Reg(d), Reg(a), Reg(bb));
                }
                RandInst::Load(d, base, off, s) => {
                    c.andi(Reg(14), Reg(base), 0x38);
                    c.add(Reg(14), Reg(14), Reg(15));
                    c.load(Reg(d), Reg(14), i64::from(off), s);
                }
                RandInst::Store(base, v, off, s) => {
                    c.andi(Reg(14), Reg(base), 0x38);
                    c.add(Reg(14), Reg(14), Reg(15));
                    c.store(Reg(14), i64::from(off), Reg(v), s);
                }
            }
        }
        let next = handles[i + 1];
        let ahead = handles[(i + spec.skip as usize + 1).min(n)];
        match spec.terminator {
            0 => {
                c.fallthrough(next);
            }
            1 => {
                c.jump(ahead);
            }
            2 => {
                c.branchi(CondKind::LtU, Reg(spec.cond_reg), 0x4000, ahead).fallthrough(next);
            }
            _ => {
                c.indirect_jump(Reg(spec.cond_reg), &[next, ahead]);
            }
        }
    }
    b.at(handles[n]).halt();
    b.set_entry(handles[0]);
    b.build().expect("generated program validates")
}
