//! Fault-injection recovery tests: every [`FaultPlan`] scenario corrupts
//! speculative state only (predictions, training, squash decisions), so a
//! correct core must recover — the run completes, every commit passes the
//! lockstep cross-check, and the fault counter proves the scenario really
//! exercised the recovery path.
//!
//! Also covers the harness's graceful degradation: a poisoned run is
//! recorded with partial statistics instead of aborting, and the remaining
//! (workload, predictor) pairs still complete.

use phast_experiments::harness::{Budget, Sweep};
use phast_experiments::PredictorKind;
use phast_ooo::{try_simulate, CheckConfig, CoreConfig, FaultPlan};

const INSTS: u64 = 20_000;
const ITERS: u64 = 100_000;

/// Runs `workload` under `kind` with the given fault plan and full
/// checking; panics with the scenario name on any integrity failure.
/// `expect_fired` additionally requires the plan to have injected at least
/// one fault, guarding against a vacuous pass.
fn assert_recovers(
    workload: &str,
    kind: &PredictorKind,
    scenario: &str,
    plan: FaultPlan,
    expect_fired: bool,
) {
    let w = phast_workloads::by_name(workload).expect("workload exists");
    let program = w.build(ITERS);
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig::with_faults(plan);
    cfg.train_point = kind.train_point();
    let mut predictor = kind.build(&program, INSTS);
    let stats = try_simulate(&program, &cfg, predictor.as_mut(), INSTS).unwrap_or_else(|e| {
        panic!("{workload} × {} did not recover from '{scenario}': {e}", kind.label())
    });
    assert_eq!(
        stats.checked_commits, stats.committed,
        "{workload} × {} under '{scenario}': every commit must be cross-checked",
        kind.label()
    );
    if expect_fired {
        assert!(
            stats.injected_faults > 0,
            "{workload} × {} under '{scenario}': the plan never fired, the test is vacuous",
            kind.label()
        );
    }
}

#[test]
fn every_fault_scenario_recovers_under_phast() {
    for (name, plan) in FaultPlan::scenarios(0xfa57) {
        assert_recovers("exchange2", &PredictorKind::Phast, name, plan, true);
    }
}

#[test]
fn every_fault_scenario_recovers_under_store_sets() {
    for (name, plan) in FaultPlan::scenarios(0xbeef) {
        // Store Sets predicts concrete store tokens, never distances, so
        // the flip-distance fault has nothing to corrupt for this kind.
        let fires = name != "flip-distance";
        assert_recovers("leela", &PredictorKind::StoreSets, name, plan, fires);
    }
}

#[test]
fn every_fault_scenario_recovers_under_mdp_tage() {
    for (name, plan) in FaultPlan::scenarios(0x7a6e) {
        assert_recovers("gcc_1", &PredictorKind::MdpTage, name, plan, true);
    }
}

#[test]
fn every_fault_scenario_recovers_under_nosq() {
    for (name, plan) in FaultPlan::scenarios(0x0509) {
        assert_recovers("gcc_1", &PredictorKind::NoSq, name, plan, true);
    }
}

#[test]
fn fault_sequences_are_reproducible() {
    let (name, plan) = FaultPlan::scenarios(7)[4]; // combined
    let run = || {
        let w = phast_workloads::by_name("gcc_1").expect("workload exists");
        let program = w.build(ITERS);
        let mut cfg = CoreConfig::alder_lake();
        cfg.check = CheckConfig::with_faults(plan);
        cfg.train_point = PredictorKind::Phast.train_point();
        let mut predictor = PredictorKind::Phast.build(&program, INSTS);
        try_simulate(&program, &cfg, predictor.as_mut(), INSTS)
            .unwrap_or_else(|e| panic!("'{name}' did not recover: {e}"))
    };
    let a = run();
    let b = run();
    assert!(a.injected_faults > 0);
    assert_eq!(a.injected_faults, b.injected_faults, "same seed, same fault sequence");
    assert_eq!(a.cycles, b.cycles, "same seed, same timing");
}

/// One poisoned run must degrade gracefully — recorded with partial stats —
/// while the rest of the sweep completes untouched. The degraded-run
/// registry is scoped to the [`Sweep`], so parallel tests (or concurrent
/// sweeps) cannot steal each other's reports.
#[test]
fn harness_degrades_gracefully_and_the_sweep_continues() {
    let budget = Budget { insts: 5_000, workload_iters: 50_000, max_workloads: None };
    let w = phast_workloads::by_name("exchange2").expect("workload exists");
    let sweep = Sweep::serial();

    // Poison: a deadlock threshold shorter than the pipeline's fill latency
    // guarantees a Deadlock error before the first commit.
    let mut poisoned = CoreConfig::alder_lake();
    poisoned.deadlock_cycles = 2;
    let bad = sweep.run_one(&w, &PredictorKind::Blind, &poisoned, &budget);
    assert!(!bad.ok(), "poisoned run must fail");
    assert_eq!(bad.failure.as_ref().map(|e| e.kind()), Some("deadlock"));
    assert!(bad.stats.committed < 5_000, "statistics are partial, not fabricated");

    // The failure is in the registry exactly once, naming the pair — and
    // only in this sweep's registry, not in any other sweep's.
    let other_sweep = Sweep::serial();
    assert!(other_sweep.take_degraded().is_empty(), "registries are per-sweep");
    let degraded = sweep.take_degraded();
    assert_eq!(degraded.len(), 1);
    assert!(degraded[0].contains("exchange2"), "entry names the workload: {}", degraded[0]);

    // The sweep continues: the same pair with a sane config still works,
    // and leaves the registry empty.
    let good = sweep.run_one(&w, &PredictorKind::Blind, &CoreConfig::alder_lake(), &budget);
    assert!(good.ok());
    assert!(good.stats.committed >= 5_000);
    assert!(sweep.take_degraded().is_empty());
}
