//! Sampled-versus-full accuracy validation (cross-crate).
//!
//! The acceptance contract of the sampling subsystem: on a grid of at
//! least 4 workloads × 2 predictors, the sampled IPC estimate must land
//! within the documented error bound (`docs/SAMPLING.md`,
//! `phast_sample::ipc_error_bound`) of the full-detail IPC over the same
//! horizon. Checking is off and the horizon is moderate so the debug
//! profile stays fast — but not shorter: mid-stride window placement
//! deliberately leaves the cold-boot transient unsampled, so the horizon
//! must be long enough for that transient to be a small fraction of the
//! full-detail reference too. The CI quick-grid step re-runs the same
//! contract at release scale through `phast-experiments --quick sampled`.

use phast_baselines::{StoreSets, StoreSetsConfig};
use phast_mdp::MemDepPredictor;
use phast_ooo::{simulate, CheckConfig, CoreConfig};
use phast_sample::{ipc_error_bound, run_sampled, SampleConfig};
use phast::{Phast, PhastConfig};

const HORIZON: u64 = 80_000;
const WORKLOADS: [&str; 4] = ["mcf", "exchange2", "omnetpp", "gcc_1"];

type PredictorBuilder = Box<dyn Fn() -> Box<dyn MemDepPredictor>>;

fn predictors() -> Vec<(&'static str, PredictorBuilder)> {
    vec![
        ("store-sets", Box::new(|| Box::new(StoreSets::new(StoreSetsConfig::paper())))),
        ("phast", Box::new(|| Box::new(Phast::new(PhastConfig::paper())))),
    ]
}

#[test]
fn sampled_ipc_is_within_the_documented_bound() {
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig::off();
    let scfg = SampleConfig::new(6, 1_500, 800);
    for name in WORKLOADS {
        let w = phast_workloads::by_name(name).expect("workload exists");
        let program = w.build(200_000);
        for (label, build) in predictors() {
            let mut full_pred = build();
            let full = simulate(&program, &cfg, full_pred.as_mut(), HORIZON);
            let full_ipc = full.ipc();

            let mut build_box = || build();
            let (est, runs) = run_sampled(&program, &cfg, &scfg, HORIZON, &mut build_box)
                .expect("workloads emulate cleanly");
            assert!(runs.iter().all(|r| r.failure.is_none()), "{name} × {label}: window degraded");
            assert!(est.windows >= 2, "{name} × {label}: too few windows measured");

            let err = (est.ipc - full_ipc).abs();
            let bound = ipc_error_bound(full_ipc, est.ipc_ci_half);
            assert!(
                err <= bound,
                "{name} × {label}: sampled IPC {:.4} vs full {:.4} — error {err:.4} \
                 exceeds bound {bound:.4} (ci half {:.4})",
                est.ipc,
                full_ipc,
                est.ipc_ci_half,
            );
        }
    }
}

#[test]
fn sampling_measures_far_fewer_instructions_than_full_detail() {
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig::off();
    let scfg = SampleConfig::new(6, 1_500, 800);
    let w = phast_workloads::by_name("mcf").expect("workload exists");
    let program = w.build(200_000);
    let (est, _) = run_sampled(&program, &cfg, &scfg, HORIZON, &mut || {
        Box::new(StoreSets::new(StoreSetsConfig::paper()))
    })
    .expect("clean");
    // The point of sampling: the cycle-accurate core sees a small
    // fraction of the horizon.
    assert!(
        est.measured_insts * 4 <= HORIZON,
        "measured {} of {HORIZON} — sampling is not sampling",
        est.measured_insts
    );
    assert!(est.fast_forwarded_insts > 0, "some of the horizon must be fast-forwarded");
}
