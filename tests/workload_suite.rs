//! Cross-crate integration: every synthetic workload runs correctly on
//! the out-of-order core under several predictors, and the simulation is
//! deterministic.

use phast::{Phast, PhastConfig};
use phast_baselines::{NoSqConfig, NoSqPredictor, StoreSets, StoreSetsConfig};
use phast_isa::Emulator;
use phast_mdp::{BlindSpeculation, MemDepPredictor};
use phast_ooo::{simulate, CoreConfig, TrainPoint};

const INSTS: u64 = 30_000;

fn run(workload: &str, pred: &mut dyn MemDepPredictor, train: TrainPoint) -> phast_ooo::SimStats {
    let w = phast_workloads::by_name(workload).expect("workload exists");
    let p = w.build(200_000);
    let mut cfg = CoreConfig::alder_lake();
    cfg.train_point = train;
    simulate(&p, &cfg, pred, INSTS)
}

#[test]
fn every_workload_commits_the_budget_under_every_predictor_class() {
    for w in phast_workloads::all_workloads() {
        for (pred, train) in [
            (Box::new(BlindSpeculation) as Box<dyn MemDepPredictor>, TrainPoint::Detect),
            (Box::new(Phast::new(PhastConfig::paper())), TrainPoint::Commit),
            (Box::new(StoreSets::new(StoreSetsConfig::paper())), TrainPoint::Detect),
            (Box::new(NoSqPredictor::new(NoSqConfig::paper())), TrainPoint::Detect),
        ] {
            let mut pred = pred;
            let name = pred.name().to_owned();
            let s = run(w.name, pred.as_mut(), train);
            assert!(
                s.committed >= INSTS,
                "{} under {name} committed only {}",
                w.name,
                s.committed
            );
            assert!(s.ipc() > 0.05, "{} under {name}: implausible IPC {}", w.name, s.ipc());
        }
    }
}

#[test]
fn workload_architectural_state_matches_emulator_under_speculation() {
    // The most speculation-hostile predictor (blind) against the emulator,
    // checking final architectural state after a fixed instruction count
    // is impossible mid-loop, so run small programs to completion instead.
    for name in ["exchange2", "gcc_1", "povray", "perlbench_1", "x264", "leela"] {
        let w = phast_workloads::by_name(name).unwrap();
        let p = w.build(40); // small enough to halt within the budget
        let mut emu = Emulator::new(&p);
        let expected = emu.run_collect(2_000_000).unwrap();
        assert!(emu.halted(), "{name} emulator must halt");

        let mut pred = BlindSpeculation;
        let mut core = phast_ooo::Core::new(
            &p,
            CoreConfig::alder_lake(),
            &mut pred,
            Box::new(phast_branch::Tage::new(phast_branch::TageConfig::default())),
        );
        core.enable_commit_log();
        let stats = core.run(2_000_000, 100_000_000);
        assert!(stats.halted, "{name} core must halt");
        assert_eq!(core.commit_log().len(), expected.len(), "{name} commit count");
        for (got, want) in core.commit_log().iter().zip(&expected) {
            assert_eq!(got.pc, want.pc, "{name} diverged at seq {}", want.seq);
            assert_eq!(got.dst_value, want.dst_value, "{name} wrong value at seq {}", want.seq);
        }
    }
}

#[test]
fn simulations_are_deterministic_across_runs() {
    for name in ["gcc_2", "leela"] {
        let mut first = Phast::new(PhastConfig::paper());
        let a = run(name, &mut first, TrainPoint::Commit);
        let mut second = Phast::new(PhastConfig::paper());
        let b = run(name, &mut second, TrainPoint::Commit);
        assert_eq!(a.cycles, b.cycles, "{name} cycles must be reproducible");
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.false_dependences, b.false_dependences);
        assert_eq!(a.predictor_accesses, b.predictor_accesses);
    }
}

#[test]
fn dependence_heavy_workloads_punish_blind_speculation() {
    // The workloads built around store→load dependences must show real
    // squash pressure without a predictor.
    for name in ["exchange2", "gcc_1", "perlbench_3", "x264"] {
        let mut blind = BlindSpeculation;
        let blind_stats = run(name, &mut blind, TrainPoint::Detect);
        let mut phast = Phast::new(PhastConfig::paper());
        let phast_stats = run(name, &mut phast, TrainPoint::Commit);
        assert!(
            blind_stats.violations > 20 * phast_stats.violations.max(1),
            "{name}: blind {} vs phast {} violations",
            blind_stats.violations,
            phast_stats.violations
        );
        assert!(
            phast_stats.ipc() > blind_stats.ipc(),
            "{name}: phast {} must beat blind {}",
            phast_stats.ipc(),
            blind_stats.ipc()
        );
    }
}

#[test]
fn streaming_workloads_need_no_prediction() {
    // lbm/fotonik-like workloads have almost no in-flight dependences:
    // blind speculation should already be near-perfect.
    for name in ["lbm", "fotonik3d", "mcf"] {
        let mut blind = BlindSpeculation;
        let s = run(name, &mut blind, TrainPoint::Detect);
        assert!(
            s.violations < 20,
            "{name} should have almost no violations (got {})",
            s.violations
        );
    }
}
