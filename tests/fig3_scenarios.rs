//! The paper's Fig. 3 scenarios: two stores targeting the same address as
//! a subsequent load, differing in execution timing. Cases (a)–(d) are
//! constructed by controlling when each store's address resolves, and the
//! test asserts the squash behaviour the paper prescribes.

use phast_isa::{CondKind, MemSize, Program, ProgramBuilder, Reg};
use phast_mdp::BlindSpeculation;
use phast_ooo::{simulate, CoreConfig, SimStats};

/// Builds a loop with two stores to the same address followed by a load.
/// `divs1`/`divs2` control how late each store's address resolves;
/// `load_delay_muls` controls how late the load's address is ready.
fn two_store_program(divs1: usize, divs2: usize, load_delay_muls: usize, iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let exit = b.block();
    b.at(entry).li(Reg(1), 0x1000).li(Reg(2), 1).li(Reg(10), 0).jump(head);
    let mut c = b.at(head);
    // Store 1's address chain.
    c.li(Reg(4), 1);
    for _ in 0..divs1 {
        c.div(Reg(4), Reg(4), Reg(2));
    }
    c.addi(Reg(4), Reg(4), 0x1000 - 1);
    // Store 2's address chain.
    c.li(Reg(5), 1);
    for _ in 0..divs2 {
        c.div(Reg(5), Reg(5), Reg(2));
    }
    c.addi(Reg(5), Reg(5), 0x1000 - 1);
    // The load's (delayed) address.
    c.li(Reg(6), 1);
    for _ in 0..load_delay_muls {
        c.mul(Reg(6), Reg(6), Reg(6));
    }
    c.addi(Reg(6), Reg(6), 0x1000 - 1);
    c.li(Reg(7), 11)
        .li(Reg(8), 22)
        .store(Reg(4), 0, Reg(7), MemSize::B8) // St1 (older)
        .store(Reg(5), 0, Reg(8), MemSize::B8) // St2 (younger)
        .load(Reg(9), Reg(6), 0, MemSize::B8)
        .add(Reg(11), Reg(11), Reg(9))
        .addi(Reg(10), Reg(10), 1)
        .branchi(CondKind::LtU, Reg(10), iters, head)
        .fallthrough(exit);
    b.at(exit).halt();
    b.set_entry(entry);
    b.build().unwrap()
}

fn run(program: &Program, filter: bool) -> SimStats {
    let mut cfg = CoreConfig::alder_lake();
    cfg.forwarding_filter = filter;
    simulate(program, &cfg, &mut BlindSpeculation, 400_000)
}

/// Case (a): both stores resolve before the load executes — the load
/// forwards from the second store and no squash occurs.
#[test]
fn case_a_load_after_both_stores_never_squashes() {
    let p = two_store_program(0, 0, 6, 1000);
    let s = run(&p, true);
    assert_eq!(s.violations, 0, "load waits out both stores naturally");
    assert!(s.forwarded_loads >= 999, "every load forwards from St2");
}

/// Case (b): the load executes between St1 and St2 (it forwards from St1);
/// when St2 resolves, the load must be squashed — the loaded value is stale.
#[test]
fn case_b_load_between_stores_squashes() {
    // St1 fast, St2 slow, load fast.
    let p = two_store_program(0, 3, 0, 500);
    let s = run(&p, true);
    assert!(
        s.violations > 300,
        "the load keeps forwarding from St1 and must squash when St2 resolves (got {})",
        s.violations
    );
}

/// Case (c): the load executes after St2 (forwards from it) but before
/// St1. With the forwarding filter, St1's later resolution must NOT
/// squash; without it, the spurious squash occurs (paper Fig. 12).
#[test]
fn case_c_forwarding_filter_prevents_spurious_squash() {
    // St1 slow, St2 fast, load slightly delayed past St2.
    let p = two_store_program(3, 0, 2, 500);
    let with_filter = run(&p, true);
    let without_filter = run(&p, false);
    assert!(
        with_filter.filtered_violations > 300,
        "St1 resolutions must hit the filter (got {})",
        with_filter.filtered_violations
    );
    assert!(
        with_filter.violations < 25,
        "with the filter the load keeps its correct St2 value (got {})",
        with_filter.violations
    );
    assert!(
        without_filter.violations > with_filter.violations + 300,
        "without the filter every iteration squashes spuriously ({} vs {})",
        without_filter.violations,
        with_filter.violations
    );
}

/// Case (d): the load overtakes both stores; both resolutions conflict,
/// and exactly one squash per iteration results (lazy squash at commit
/// coalesces the two conflicts into one re-execution).
#[test]
fn case_d_load_overtakes_both_stores() {
    let p = two_store_program(3, 3, 0, 500);
    let s = run(&p, true);
    assert!(
        s.violations >= 400 && s.violations <= 600,
        "about one squash per iteration (got {})",
        s.violations
    );
}

/// Whatever the timing, the committed value is always St2's (22 + loop
/// payload semantics hold) — verified against the emulator.
#[test]
fn all_cases_are_value_correct() {
    use phast_isa::Emulator;
    for (d1, d2, lm) in [(0, 0, 6), (0, 3, 0), (3, 0, 2), (3, 3, 0)] {
        let p = two_store_program(d1, d2, lm, 100);
        let mut emu = Emulator::new(&p);
        emu.run(1_000_000).unwrap();
        let expected = emu.reg(Reg(11));

        let mut cfg = CoreConfig::alder_lake();
        cfg.forwarding_filter = true;
        let mut pred = BlindSpeculation;
        let mut core = phast_ooo::Core::new(
            &p,
            cfg,
            &mut pred,
            Box::new(phast_branch::Tage::new(phast_branch::TageConfig::default())),
        );
        let stats = core.run(1_000_000, 10_000_000);
        assert!(stats.halted);
        assert_eq!(
            core.arch_reg(Reg(11)),
            expected,
            "case ({d1},{d2},{lm}): accumulated loads must match the emulator"
        );
    }
}
