//! Acceptance sweep: every workload of the suite, under each headline
//! predictor plus blind speculation, must pass lockstep co-simulation and
//! invariant auditing at the quick budget. This is the end-to-end proof
//! that the pipeline commits the architecturally correct stream on real
//! programs, not just on the random-program fuzzers.

use phast_experiments::harness::Budget;
use phast_experiments::PredictorKind;
use phast_ooo::{try_simulate, CheckConfig, CoreConfig};

#[test]
fn all_workloads_pass_lockstep_under_every_headline_predictor() {
    let kinds = [
        PredictorKind::Phast,
        PredictorKind::StoreSets,
        PredictorKind::NoSq,
        PredictorKind::MdpTage,
        PredictorKind::Blind,
    ];
    // Quick-budget per-run effort, but the full 23-workload suite.
    let budget = Budget { max_workloads: None, ..Budget::quick() };

    let mut failures = Vec::new();
    for w in budget.workloads() {
        let program = w.build(budget.workload_iters);
        for kind in &kinds {
            let mut cfg = CoreConfig::alder_lake();
            cfg.check = CheckConfig::full();
            cfg.train_point = kind.train_point();
            let mut predictor = kind.build(&program, budget.insts);
            match try_simulate(&program, &cfg, predictor.as_mut(), budget.insts) {
                Ok(stats) => {
                    assert_eq!(
                        stats.checked_commits,
                        stats.committed,
                        "{} × {}: unchecked commits",
                        w.name,
                        kind.label()
                    );
                    assert!(stats.invariant_audits > 0, "audits must have fired");
                }
                Err(e) => failures.push(format!("{} × {}: {e}", w.name, kind.label())),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} runs failed lockstep:\n{}",
        failures.len(),
        23 * kinds.len(),
        failures.join("\n")
    );
}
