//! Golden architectural-timing regression test.
//!
//! Pins the exact `SimStats` counters of a small workload × predictor grid.
//! The hot-path optimizations in `phast-ooo` (incremental scoreboards,
//! allocation-free issue/writeback/forwarding) must be *perf-only*: any
//! rewrite that changes architectural timing — cycles, violations, false
//! dependences, squashes — fails this test loudly instead of silently
//! shifting every figure of the reproduction.
//!
//! The goldens were recorded from the pre-optimization scan-based core and
//! are identical in debug and release builds (integrity checking is forced
//! off so the checked/unchecked configurations time identically).
//!
//! To regenerate after an *intentional* timing change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test golden_stats -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN` below, explaining the timing
//! change in the commit message.

use phast_experiments::PredictorKind;
use phast_ooo::{
    try_simulate, CheckConfig, CoreConfig, Deadline, LaneBatch, LaneJob, LaneOutcome,
};

const INSTS: u64 = 6_000;
const ITERS: u64 = 50_000;

const WORKLOADS: &[&str] = &["exchange2", "lbm", "x264", "gcc_1"];

fn predictors() -> Vec<PredictorKind> {
    vec![
        PredictorKind::Blind,
        PredictorKind::StoreSets,
        PredictorKind::Phast,
        PredictorKind::Ideal,
    ]
}

/// One golden row: (workload, predictor label, cycles, committed,
/// violations, false dependences, forwarded loads, squashed uops).
type Golden = (&'static str, &'static str, u64, u64, u64, u64, u64, u64);

const GOLDEN: &[Golden] = &[
    // (workload, predictor, cycles, committed, violations, false_deps, forwarded, squashed)
    ("exchange2", "blind", 12312, 6003, 444, 0, 0, 37885),
    ("exchange2", "store-sets", 2479, 6009, 2, 0, 442, 1756),
    ("exchange2", "phast", 2291, 6009, 6, 0, 438, 1070),
    ("exchange2", "ideal", 2427, 6009, 0, 0, 444, 1105),
    ("lbm", "blind", 1824, 6005, 0, 0, 257, 1),
    ("lbm", "store-sets", 1824, 6005, 0, 0, 257, 1),
    ("lbm", "phast", 1824, 6005, 0, 0, 257, 1),
    ("lbm", "ideal", 1824, 6005, 0, 0, 257, 1),
    ("x264", "blind", 8409, 6000, 203, 0, 0, 20554),
    ("x264", "store-sets", 2464, 6009, 2, 0, 201, 769),
    ("x264", "phast", 2494, 6009, 3, 0, 200, 868),
    ("x264", "ideal", 2325, 6009, 0, 0, 203, 291),
    ("gcc_1", "blind", 11304, 6009, 118, 0, 108, 20673),
    ("gcc_1", "store-sets", 9888, 6009, 6, 0, 213, 16499),
    ("gcc_1", "phast", 10035, 6009, 12, 0, 208, 16989),
    ("gcc_1", "ideal", 9890, 6000, 0, 0, 217, 16534),
];

/// An observed row, shaped like [`Golden`] but with owned strings.
type ObservedRow = (String, String, u64, u64, u64, u64, u64, u64);

fn run_grid() -> Vec<ObservedRow> {
    let mut rows = Vec::new();
    for wname in WORKLOADS {
        let w = phast_workloads::by_name(wname).expect("workload exists");
        let program = w.build(ITERS);
        for kind in predictors() {
            let mut cfg = CoreConfig::alder_lake();
            cfg.train_point = kind.train_point();
            // Integrity checking must not influence timing; force it off so
            // debug and release builds produce identical counters.
            cfg.check = CheckConfig::off();
            let mut predictor = kind.build(&program, INSTS);
            let stats = try_simulate(&program, &cfg, predictor.as_mut(), INSTS)
                .unwrap_or_else(|e| panic!("{wname} × {}: {e}", kind.label()));
            rows.push((
                wname.to_string(),
                kind.label(),
                stats.cycles,
                stats.committed,
                stats.violations,
                stats.false_dependences,
                stats.forwarded_loads,
                stats.squashed_uops,
            ));
        }
    }
    rows
}

/// The same grid as [`run_grid`], interleaved through one [`LaneBatch`]
/// of `lanes` cells at a time instead of run solo.
fn run_grid_lanes(lanes: usize) -> Vec<ObservedRow> {
    let mut jobs = Vec::new();
    let mut labels = Vec::new();
    for wname in WORKLOADS {
        let w = phast_workloads::by_name(wname).expect("workload exists");
        for kind in predictors() {
            let program = w.build(ITERS);
            let mut cfg = CoreConfig::alder_lake();
            cfg.train_point = kind.train_point();
            cfg.check = CheckConfig::off();
            let predictor = kind.build(&program, INSTS);
            labels.push((wname.to_string(), kind.label()));
            jobs.push(LaneJob::new(program, cfg, predictor, INSTS, Deadline::none()));
        }
    }
    let reports = LaneBatch::new(lanes).run(jobs);
    labels
        .into_iter()
        .zip(reports)
        .map(|((w, p), report)| {
            let stats = match report.outcome {
                LaneOutcome::Finished(stats) => stats,
                other => panic!("{w} × {p}: lane degraded: {other:?}"),
            };
            (
                w,
                p,
                stats.cycles,
                stats.committed,
                stats.violations,
                stats.false_dependences,
                stats.forwarded_loads,
                stats.squashed_uops,
            )
        })
        .collect()
}

#[test]
fn timing_matches_the_pinned_goldens() {
    let rows = run_grid();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (w, p, cy, co, v, f, fw, sq) in &rows {
            println!("    (\"{w}\", \"{p}\", {cy}, {co}, {v}, {f}, {fw}, {sq}),");
        }
        return;
    }
    assert_eq!(rows.len(), GOLDEN.len(), "grid shape changed — regenerate the goldens");
    for (got, want) in rows.iter().zip(GOLDEN) {
        let got_tuple = (
            got.0.as_str(),
            got.1.as_str(),
            got.2,
            got.3,
            got.4,
            got.5,
            got.6,
            got.7,
        );
        assert_eq!(
            got_tuple,
            *want,
            "architectural timing diverged for {} × {}: \
             got (cycles {}, committed {}, violations {}, false_deps {}, forwarded {}, squashed {}), \
             expected {:?}",
            got.0, got.1, got.2, got.3, got.4, got.5, got.6, got.7, want
        );
    }
}

/// Lane batching must be perf-only at the architectural level: the same
/// grid interleaved through a `LaneBatch` produces the exact pinned
/// counters, at any lane count.
#[test]
fn lane_batched_timing_matches_the_pinned_goldens() {
    for lanes in [2, 4, 16] {
        let rows = run_grid_lanes(lanes);
        assert_eq!(rows.len(), GOLDEN.len(), "lanes={lanes}: grid shape changed");
        for (got, want) in rows.iter().zip(GOLDEN) {
            let got_tuple = (
                got.0.as_str(),
                got.1.as_str(),
                got.2,
                got.3,
                got.4,
                got.5,
                got.6,
                got.7,
            );
            assert_eq!(
                got_tuple, *want,
                "lanes={lanes}: lane-batched timing diverged for {} × {}",
                got.0, got.1
            );
        }
    }
}
