//! Shape-level checks of the paper's headline claims, at a moderate
//! budget. Absolute values differ from the paper (synthetic workloads);
//! the *ordering* claims are asserted:
//!
//! 1. PHAST is the closest limited predictor to ideal (geomean IPC).
//! 2. PHAST has the lowest total MPKI of the limited predictors.
//! 3. UnlimitedPHAST sits within a small gap of ideal (paper: 0.47%).
//! 4. The forwarding filter helps PHAST more than any other predictor
//!    (paper Fig. 12: +5% for PHAST vs ~1-2% for the rest).
//! 5. UnlimitedPHAST tracks far fewer paths than a 16-branch fixed-length
//!    NoSQ (paper: less than a third).

use phast_experiments::harness::{geomean, normalized_ipc, RunResult, Sweep};
use phast_experiments::{Budget, PredictorKind};
use phast_ooo::CoreConfig;

fn budget() -> Budget {
    Budget { insts: 60_000, workload_iters: 400_000, max_workloads: None }
}

/// Runs every budgeted workload under one predictor on a parallel sweep
/// scoped to this call (degraded-run reports stay local to the test).
fn run_all(kind: &PredictorKind, cfg: &CoreConfig, budget: &Budget) -> Vec<RunResult> {
    Sweep::parallel().run_all(kind, cfg, budget)
}

#[test]
fn phast_is_closest_to_ideal_and_has_lowest_mpki() {
    let budget = budget();
    let cfg = CoreConfig::alder_lake();
    let ideal = run_all(&PredictorKind::Ideal, &cfg, &budget);

    let mut geomeans = Vec::new();
    let mut mpkis = Vec::new();
    for kind in PredictorKind::headline() {
        let runs = run_all(&kind, &cfg, &budget);
        geomeans.push((kind.label(), geomean(&normalized_ipc(&runs, &ideal))));
        let m =
            runs.iter().map(|r| r.stats.total_mpki()).sum::<f64>() / runs.len() as f64;
        mpkis.push((kind.label(), m));
    }
    let phast_ipc = geomeans.last().unwrap().1;
    for (name, g) in &geomeans[..geomeans.len() - 1] {
        assert!(
            phast_ipc >= g - 0.004,
            "PHAST ({phast_ipc:.4}) must not trail {name} ({g:.4}) beyond noise"
        );
    }
    let phast_mpki = mpkis.last().unwrap().1;
    for (name, m) in &mpkis[..mpkis.len() - 1] {
        assert!(
            phast_mpki < *m,
            "PHAST total MPKI ({phast_mpki:.3}) must be lowest; {name} has {m:.3}"
        );
    }
    // Paper: 62-70% misprediction reduction vs the baselines.
    let best_other = mpkis[..mpkis.len() - 1].iter().map(|(_, m)| *m).fold(f64::MAX, f64::min);
    assert!(
        phast_mpki < 0.8 * best_other,
        "PHAST must reduce mispredictions substantially ({phast_mpki:.3} vs best other {best_other:.3})"
    );
}

#[test]
fn unlimited_phast_is_near_ideal() {
    let budget = budget();
    let cfg = CoreConfig::alder_lake();
    let ideal = run_all(&PredictorKind::Ideal, &cfg, &budget);
    let runs = run_all(&PredictorKind::UnlimitedPhast(None), &cfg, &budget);
    let g = geomean(&normalized_ipc(&runs, &ideal));
    assert!(
        g > 0.98,
        "UnlimitedPHAST must be within ~2% of ideal at this budget (got {g:.4})"
    );
}

#[test]
fn forwarding_filter_helps_phast_most() {
    let budget = budget();
    let mut on = CoreConfig::alder_lake();
    on.forwarding_filter = true;
    let mut off = CoreConfig::alder_lake();
    off.forwarding_filter = false;
    let ideal = run_all(&PredictorKind::Ideal, &on, &budget);

    let gain = |kind: &PredictorKind| {
        let g_on = geomean(&normalized_ipc(&run_all(kind, &on, &budget), &ideal));
        let g_off = geomean(&normalized_ipc(&run_all(kind, &off, &budget), &ideal));
        g_on - g_off
    };
    let phast_gain = gain(&PredictorKind::Phast);
    let nosq_gain = gain(&PredictorKind::NoSq);
    let ss_gain = gain(&PredictorKind::StoreSets);
    assert!(
        phast_gain >= nosq_gain - 0.002 && phast_gain >= ss_gain - 0.002,
        "FWD filtering must benefit PHAST at least as much as the others \
         (phast {phast_gain:.4}, nosq {nosq_gain:.4}, ss {ss_gain:.4})"
    );
    assert!(phast_gain > 0.0, "the filter must help PHAST (got {phast_gain:.4})");
}

#[test]
fn unlimited_phast_tracks_fewer_paths_than_long_nosq() {
    let budget = budget();
    let cfg = CoreConfig::alder_lake();
    let phast_paths: u64 = run_all(&PredictorKind::UnlimitedPhast(None), &cfg, &budget)
        .iter()
        .map(|r| r.num_paths)
        .sum();
    let nosq16_paths: u64 = run_all(&PredictorKind::UnlimitedNoSq(16), &cfg, &budget)
        .iter()
        .map(|r| r.num_paths)
        .sum();
    assert!(
        phast_paths * 2 < nosq16_paths,
        "UnlimitedPHAST ({phast_paths}) must track far fewer paths than 16-branch NoSQ ({nosq16_paths})"
    );
}

#[test]
fn history_cap_32_matches_unlimited() {
    // Fig. 11: a 32-branch cap loses nothing measurable.
    let budget = budget();
    let cfg = CoreConfig::alder_lake();
    let ideal = run_all(&PredictorKind::Ideal, &cfg, &budget);
    let unl =
        geomean(&normalized_ipc(&run_all(&PredictorKind::UnlimitedPhast(None), &cfg, &budget), &ideal));
    let capped = geomean(&normalized_ipc(
        &run_all(&PredictorKind::UnlimitedPhast(Some(32)), &cfg, &budget),
        &ideal,
    ));
    assert!(
        (unl - capped).abs() < 0.005,
        "a 32-branch cap must be indistinguishable ({capped:.4} vs {unl:.4})"
    );
}
