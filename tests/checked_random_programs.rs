//! Checker fuzzer (the regalloc2 pattern): random `ProgramBuilder` CFGs
//! run through `try_simulate` with the full integrity layer enabled —
//! lockstep co-simulation against the reference emulator plus frequent
//! structural-invariant audits — for each predictor kind of the headline
//! comparison and the unprotected extremes (blind speculation, total
//! order). Any committed value, address, store datum or pc that differs
//! from the reference, and any corrupted pipeline structure, fails the
//! property with the first divergence and a pipeline snapshot.

mod common;

use common::{block_strategy, build_program};
use phast_experiments::PredictorKind;
use phast_ooo::{try_simulate, CheckConfig, CoreConfig, SimStats};
use proptest::prelude::*;

const MAX_INSTS: u64 = 100_000;

/// Every predictor kind the fuzzer drives: the five headline predictors
/// plus the two unprotected extremes.
fn fuzzed_kinds() -> Vec<PredictorKind> {
    let mut kinds = PredictorKind::headline();
    kinds.push(PredictorKind::Blind);
    kinds.push(PredictorKind::TotalOrder);
    kinds
}

/// Audit every 64 cycles: random programs are short, so a coarse interval
/// would never fire.
fn checked_cfg(kind: &PredictorKind) -> CoreConfig {
    let mut cfg = CoreConfig::alder_lake();
    cfg.check = CheckConfig { invariant_interval: 64, ..CheckConfig::full() };
    cfg.train_point = kind.train_point();
    cfg
}

fn run_checked(
    program: &phast_isa::Program,
    kind: &PredictorKind,
) -> Result<SimStats, TestCaseError> {
    let cfg = checked_cfg(kind);
    let mut predictor = kind.build(program, MAX_INSTS);
    try_simulate(program, &cfg, predictor.as_mut(), MAX_INSTS)
        .map_err(|e| TestCaseError::fail(format!("{} failed checking: {e}", kind.label())))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_pass_full_checking_for_every_kind(
        blocks in prop::collection::vec(block_strategy(), 2..10)
    ) {
        let program = build_program(&blocks);
        for kind in fuzzed_kinds() {
            let stats = run_checked(&program, &kind)?;
            prop_assert!(stats.halted, "{}: generated programs terminate", kind.label());
            prop_assert_eq!(
                stats.checked_commits, stats.committed,
                "{}: every commit must be cross-checked", kind.label()
            );
        }
    }

    #[test]
    fn random_programs_pass_checking_under_eager_squash(
        blocks in prop::collection::vec(block_strategy(), 2..8)
    ) {
        // The eager-squash recovery path (squash at detection) is distinct
        // machinery from the lazy commit-time path; fuzz it too.
        let program = build_program(&blocks);
        let kind = PredictorKind::StoreSets;
        let mut cfg = checked_cfg(&kind);
        cfg.mem_squash = phast_ooo::MemSquashPolicy::Eager;
        let mut predictor = kind.build(&program, MAX_INSTS);
        let stats = try_simulate(&program, &cfg, predictor.as_mut(), MAX_INSTS)
            .map_err(|e| TestCaseError::fail(format!("eager squash failed checking: {e}")))?;
        prop_assert!(stats.halted);
        prop_assert_eq!(stats.checked_commits, stats.committed);
    }
}
