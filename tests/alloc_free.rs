//! Proves the steady-state cycle loop is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms a core up (first touches of memory pages, cache MSHR maps,
//! predictor tables and scoreboard buffers all reach steady capacity),
//! then resumes the same core for a measured window and requires **zero**
//! heap allocations during it. Any future change that reintroduces a
//! per-cycle or per-instruction allocation — a `Vec` collected per probe,
//! a cloned instruction on fetch, a per-event boxed wait list — fails
//! here with an exact count instead of only showing up as a slow sweep.
//!
//! This file must hold exactly one `#[test]`: the libtest runner executes
//! tests of one binary concurrently, and a neighbour's allocations would
//! leak into the measured window.

use phast_mdp::BlindSpeculation;
use phast_ooo::{CheckConfig, Core, CoreConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
#[cfg(debug_assertions)]
static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        #[cfg(debug_assertions)]
        if TRAP.load(Ordering::Relaxed) {
            TRAP.store(false, Ordering::Relaxed);
            panic!("alloc of {} bytes in measured window", layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing `Vec` reallocates rather than allocating; count it the
        // same — capacity growth inside the measured window is still a
        // heap round-trip on the hot path.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// lbm streams one 8-byte slot per outer iteration over a 4096-slot
// buffer, so the sparse-memory map keeps growing until a full pass has
// touched all 512 lines — roughly 4096 iterations × ~20 instructions.
// The warmup must cover at least one full pass; after that the footprint
// (memory map, cache MSHRs, scoreboards, predictor state) is closed.
const WARMUP_INSTS: u64 = 120_000;
const MEASURED_INSTS: u64 = 20_000;
const MAX_CYCLES: u64 = 10_000_000;

#[test]
fn steady_state_cycle_loop_does_not_allocate() {
    let w = phast_workloads::by_name("lbm").expect("workload exists");
    let program = w.build(100_000);
    let mut cfg = CoreConfig::alder_lake();
    // The integrity layer is off on the perf path (golden_stats pins that
    // timing); the lockstep emulator would allocate for its own state.
    cfg.check = CheckConfig::off();
    let mut predictor = BlindSpeculation;
    let direction = Box::new(phast_branch::Tage::new(phast_branch::TageConfig::default()));
    let mut core = Core::new(&program, cfg, &mut predictor, direction);

    let warm = core.try_run(WARMUP_INSTS, MAX_CYCLES).expect("warmup runs clean");
    assert!(warm.committed >= WARMUP_INSTS, "warmup must commit its budget");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    #[cfg(debug_assertions)]
    TRAP.store(true, Ordering::SeqCst);
    let stats = core
        .try_run(WARMUP_INSTS + MEASURED_INSTS, MAX_CYCLES)
        .expect("measured window runs clean");
    // Disarm before returning control to libtest: the harness itself
    // allocates to report the finished test, and a trap firing there
    // kills the test thread mid-send and hangs the runner.
    #[cfg(debug_assertions)]
    TRAP.store(false, Ordering::SeqCst);
    let during = ALLOCATIONS.load(Ordering::SeqCst) - before;

    assert!(
        stats.committed >= WARMUP_INSTS + MEASURED_INSTS,
        "measured window must commit its budget (committed {})",
        stats.committed
    );
    assert_eq!(
        during, 0,
        "steady-state commit loop allocated {during} times over {MEASURED_INSTS} instructions"
    );
}
