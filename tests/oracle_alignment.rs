//! The ideal predictor depends on the core's speculative architectural
//! sequence numbering staying exact across branch mispredicts and
//! memory-order squashes. If `arch_seq` ever drifted, the oracle would
//! answer for the wrong dynamic instruction and violations would appear.

use phast_experiments::harness::{Budget, RunResult, Sweep};
use phast_experiments::PredictorKind;
use phast_ooo::CoreConfig;
use phast_workloads::Workload;

fn run_one(w: &Workload, kind: &PredictorKind, cfg: &CoreConfig, budget: &Budget) -> RunResult {
    Sweep::serial().run_one(w, kind, cfg, budget)
}

fn run_all(kind: &PredictorKind, cfg: &CoreConfig, budget: &Budget) -> Vec<RunResult> {
    Sweep::parallel().run_all(kind, cfg, budget)
}

#[test]
fn ideal_predictor_never_violates_on_branchy_workloads() {
    // gcc_1 mispredicts branches constantly (hash-driven selectors) and
    // povray mispredicts indirect targets; both squash and re-fetch all
    // the time. The oracle must still line up perfectly.
    let budget = Budget { insts: 60_000, workload_iters: 400_000, max_workloads: None };
    for name in ["gcc_1", "gcc_2", "povray", "deepsjeng", "leela", "xz"] {
        let w = phast_workloads::by_name(name).unwrap();
        let r = run_one(&w, &PredictorKind::Ideal, &CoreConfig::alder_lake(), &budget);
        assert_eq!(
            r.stats.violations, 0,
            "{name}: the oracle must never squash (arch_seq drift?)"
        );
        assert_eq!(
            r.stats.false_dependences, 0,
            "{name}: the oracle must never stall needlessly"
        );
        assert!(r.stats.branch_mispredicts > 0, "{name} must actually be branchy");
    }
}

#[test]
fn ideal_is_an_upper_bound_for_every_limited_predictor() {
    let budget = Budget { insts: 40_000, workload_iters: 300_000, max_workloads: Some(8) };
    let cfg = CoreConfig::alder_lake();
    let ideal = run_all(&PredictorKind::Ideal, &cfg, &budget);
    for kind in PredictorKind::headline() {
        let runs = run_all(&kind, &cfg, &budget);
        for (r, i) in runs.iter().zip(&ideal) {
            assert!(
                r.stats.ipc() <= i.stats.ipc() * 1.06,
                "{} on {} ({:.3}) implausibly beats ideal ({:.3})",
                kind.label(),
                r.workload,
                r.stats.ipc(),
                i.stats.ipc()
            );
        }
    }
}
